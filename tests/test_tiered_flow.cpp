// Tiered flow-state tests (DESIGN.md Sec. 11): the hashed timing wheel,
// the cold-tier slab arena, and the TieredFlowInspector — including a
// randomized parity fuzz against the flat FlowInspector, which is the
// ground truth for delivery semantics.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "dfa/dfa.h"
#include "engine_test_util.h"
#include "flow/flow.h"
#include "flow/slab.h"
#include "flow/tiered.h"
#include "flow/timing_wheel.h"
#include "hfa/hfa.h"
#include "mfa/mfa.h"
#include "nfa/nfa.h"
#include "util/rng.h"

namespace mfa::flow {
namespace {

using mfa::testing::compile_patterns;
using mfa::testing::sorted;

core::Mfa build(const std::vector<std::string>& sources) {
  auto m = core::build_mfa(compile_patterns(sources));
  EXPECT_TRUE(m.has_value());
  return *std::move(m);
}

Packet make_packet(const FlowKey& key, std::uint64_t seq, const std::string& bytes) {
  return Packet{key, seq, reinterpret_cast<const std::uint8_t*>(bytes.data()),
                static_cast<std::uint32_t>(bytes.size())};
}

// --- TimingWheel ---

TEST(TimingWheel, AdvanceSurfacesEntriesInExpiryOrder) {
  TimingWheel w;
  w.schedule(1, 100);
  w.schedule(2, 40);
  w.schedule(3, 400);
  std::vector<std::uint32_t> surfaced;
  w.advance(500, [&](std::uint32_t item) -> std::int64_t {
    surfaced.push_back(item);
    return TimingWheel::kConsume;
  });
  ASSERT_EQ(surfaced.size(), 3u);
  EXPECT_EQ(surfaced[0], 2u);  // expiry 40 surfaces first
  EXPECT_EQ(surfaced[1], 1u);
  EXPECT_EQ(surfaced[2], 3u);
  EXPECT_EQ(w.pending(), 0u);
}

TEST(TimingWheel, RetouchReschedulingDefersEviction) {
  // An entry whose callback returns a future epoch is NOT removed: it
  // surfaces again once the cursor reaches the new expiry. This is the
  // re-touched-flow path — one reschedule per wheel turn, not per packet.
  TimingWheel w;
  w.schedule(7, 10);
  int surfacings = 0;
  w.advance(100, [&](std::uint32_t) -> std::int64_t {
    ++surfacings;
    return 300;  // flow was touched recently: push the entry out
  });
  EXPECT_EQ(surfacings, 1);
  EXPECT_EQ(w.pending(), 1u);
  w.advance(200, [&](std::uint32_t) -> std::int64_t {
    ADD_FAILURE() << "entry rescheduled to 300 must not surface at 200";
    return TimingWheel::kConsume;
  });
  w.advance(400, [&](std::uint32_t) -> std::int64_t {
    ++surfacings;
    return TimingWheel::kConsume;
  });
  EXPECT_EQ(surfacings, 2);
  EXPECT_EQ(w.pending(), 0u);
}

TEST(TimingWheel, EpochRolloverWrapsCleanly) {
  // Epochs are modular u32: schedule entries across the wrap boundary and
  // verify they surface exactly once, in order, as the cursor wraps.
  TimingWheel w;
  const std::uint32_t near_wrap = 0xffffff00U;
  w.advance(near_wrap, [](std::uint32_t) -> std::int64_t {
    return TimingWheel::kConsume;
  });
  w.schedule(1, 0xfffffff0U);                       // before the wrap
  w.schedule(2, static_cast<std::uint32_t>(0xfffffff0U + 0x40));  // after it
  std::vector<std::uint32_t> surfaced;
  w.advance(0x80, [&](std::uint32_t item) -> std::int64_t {
    surfaced.push_back(item);
    return TimingWheel::kConsume;
  });
  ASSERT_EQ(surfaced.size(), 2u);
  EXPECT_EQ(surfaced[0], 1u);
  EXPECT_EQ(surfaced[1], 2u);
  EXPECT_EQ(w.pending(), 0u);
}

TEST(TimingWheel, PopOldestSkipsGhostsAndStopsOnConsume) {
  TimingWheel w;
  w.schedule(1, 10);   // ghost (caller will kDrop it)
  w.schedule(2, 20);   // victim
  w.schedule(3, 500);  // must stay untouched
  std::vector<std::uint32_t> offered;
  const bool took = w.pop_oldest(16, [&](std::uint32_t item) -> std::int64_t {
    offered.push_back(item);
    if (item == 1) return TimingWheel::kDrop;  // stale ghost: keep searching
    return TimingWheel::kConsume;
  });
  EXPECT_TRUE(took);
  ASSERT_EQ(offered.size(), 2u);
  EXPECT_EQ(offered[0], 1u);
  EXPECT_EQ(offered[1], 2u);
  EXPECT_EQ(w.pending(), 1u);  // ghost removed, victim consumed, 3 remains
}

TEST(TimingWheel, PopOldestRespectsRescheduleVerdicts) {
  TimingWheel w;
  w.schedule(1, 10);
  const bool took = w.pop_oldest(4, [&](std::uint32_t) -> std::int64_t {
    return 900;  // "recently touched" — not a victim
  });
  EXPECT_FALSE(took);
  EXPECT_EQ(w.pending(), 1u);  // rescheduled, not lost
}

// --- SlabArena ---

TEST(SlabArena, HandlesAreStableAcrossUnrelatedAllocFree) {
  SlabArena<std::string> arena;
  const std::uint32_t a = arena.alloc("alpha");
  const std::uint32_t b = arena.alloc("beta");
  for (int i = 0; i < 1000; ++i) arena.free(arena.alloc("churn"));
  EXPECT_EQ(arena[a], "alpha");
  EXPECT_EQ(arena[b], "beta");
  EXPECT_EQ(arena.live(), 2u);
  arena.free(a);
  arena.free(b);
  EXPECT_EQ(arena.live(), 0u);
  EXPECT_GT(arena.allocated_bytes(), 0u);  // slabs are retained for reuse
}

TEST(SlabArena, RecyclesFreedStorageBeforeGrowing) {
  SlabArena<int, 4> arena;  // tiny slabs to force growth
  std::vector<std::uint32_t> handles;
  for (int i = 0; i < 9; ++i) handles.push_back(arena.alloc(i));  // 3 slabs
  const std::size_t grown = arena.allocated_bytes();
  for (const std::uint32_t h : handles) arena.free(h);
  for (int i = 0; i < 9; ++i) arena.alloc(i);
  EXPECT_EQ(arena.allocated_bytes(), grown);  // no new slabs needed
  arena.clear();
  EXPECT_EQ(arena.live(), 0u);
}

// --- TieredFlowInspector: delivery semantics ---

TEST(TieredFlow, SingleFlowInOrderAcrossPackets) {
  const core::Mfa m = build({".*abc.*xyz"});
  TieredFlowInspector<core::Mfa> insp{m};
  CollectingSink sink;
  const FlowKey key{10, 20, 1000, 80, 6};
  insp.packet(make_packet(key, 0, "ab"), sink);
  insp.packet(make_packet(key, 2, "c..x"), sink);
  insp.packet(make_packet(key, 6, "yz"), sink);
  ASSERT_EQ(sink.matches.size(), 1u);
  EXPECT_EQ(sink.matches[0].end, 7u);
  EXPECT_EQ(insp.flow_count(), 1u);
}

TEST(TieredFlow, OutOfOrderSegmentsReassembled) {
  const core::Mfa m = build({".*abcxyz"});
  TieredFlowInspector<core::Mfa> insp{m};
  CollectingSink sink;
  const FlowKey key{1, 2, 3, 4, 6};
  insp.packet(make_packet(key, 3, "xyz"), sink);
  EXPECT_TRUE(sink.matches.empty());
  insp.packet(make_packet(key, 0, "abc"), sink);
  ASSERT_EQ(sink.matches.size(), 1u);
  EXPECT_EQ(sink.matches[0].end, 5u);
}

TEST(TieredFlow, RetransmissionOverlapSkipped) {
  const core::Mfa m = build({".*abcd"});
  TieredFlowInspector<core::Mfa> insp{m};
  CollectingSink sink;
  const FlowKey key{1, 2, 3, 4, 6};
  insp.packet(make_packet(key, 0, "abc"), sink);
  insp.packet(make_packet(key, 1, "bcd"), sink);
  ASSERT_EQ(sink.matches.size(), 1u);
  insp.packet(make_packet(key, 0, "abcd"), sink);  // full duplicate
  EXPECT_EQ(sink.matches.size(), 1u);
}

TEST(TieredFlow, CrossFlowIsolation) {
  const core::Mfa m = build({".*abc.*xyz"});
  TieredFlowInspector<core::Mfa> insp{m};
  CollectingSink sink;
  const FlowKey a{1, 2, 3, 4, 6};
  const FlowKey b{5, 6, 7, 8, 6};
  insp.packet(make_packet(a, 0, "abc..."), sink);
  insp.packet(make_packet(b, 0, "...xyz"), sink);
  EXPECT_TRUE(sink.matches.empty());
  insp.packet(make_packet(a, 6, "xyz"), sink);
  ASSERT_EQ(sink.matches.size(), 1u);
}

TEST(TieredFlow, EvictDropsContext) {
  const core::Mfa m = build({".*abc.*xyz"});
  TieredFlowInspector<core::Mfa> insp{m};
  CollectingSink sink;
  const FlowKey key{1, 2, 3, 4, 6};
  insp.packet(make_packet(key, 0, "abc"), sink);
  insp.evict(key);
  EXPECT_EQ(insp.flow_count(), 0u);
  EXPECT_EQ(insp.evicted_count(), 0u);  // explicit evict is not an eviction
  insp.packet(make_packet(key, 0, "xyz"), sink);
  EXPECT_TRUE(sink.matches.empty());  // fresh context forgot the abc
}

// --- TieredFlowInspector: tier placement ---

TEST(TieredFlow, InOrderMfaFlowsNeverTouchTheColdTier) {
  const core::Mfa m = build({".*needle"});
  ASSERT_TRUE(m.inline_contexts_ok());
  TieredFlowInspector<core::Mfa> insp{m};
  EXPECT_TRUE(insp.inline_eligible());
  CountingSink sink;
  for (std::uint32_t f = 0; f < 500; ++f)
    insp.packet(make_packet(FlowKey{f, 0, 0, 0, 6}, 0, "a needle here"), sink);
  EXPECT_EQ(insp.flow_count(), 500u);
  EXPECT_EQ(insp.cold_record_count(), 0u);  // all state inline in hot slots
  EXPECT_EQ(sink.count, 500u);
}

TEST(TieredFlow, ReorderingFlowBorrowsAndReturnsAColdRecord) {
  const core::Mfa m = build({".*abcxyz"});
  TieredFlowInspector<core::Mfa> insp{m};
  CollectingSink sink;
  const FlowKey key{1, 2, 3, 4, 6};
  insp.packet(make_packet(key, 3, "xyz"), sink);  // gap: needs a pending list
  EXPECT_EQ(insp.cold_record_count(), 1u);
  EXPECT_GT(insp.reassembly_pending_bytes(), 0u);
  insp.packet(make_packet(key, 0, "abc"), sink);  // gap fills, buffer drains
  ASSERT_EQ(sink.matches.size(), 1u);
  EXPECT_EQ(insp.cold_record_count(), 0u);  // record returned to the slab
  EXPECT_EQ(insp.reassembly_pending_bytes(), 0u);
}

TEST(TieredFlow, BigStateEnginesFallBackToTheColdTier) {
  const auto h = hfa::build_hfa(compile_patterns({".*abc.*xyz"}));
  ASSERT_TRUE(h.has_value());
  TieredFlowInspector<hfa::Hfa> insp{*h};
  EXPECT_FALSE(insp.inline_eligible());  // Hfa has no InlineContext API
  CollectingSink sink;
  insp.packet(make_packet(FlowKey{1, 2, 3, 4, 6}, 0, "abc then xyz"), sink);
  insp.packet(make_packet(FlowKey{5, 6, 7, 8, 6}, 0, "nothing"), sink);
  EXPECT_EQ(insp.cold_record_count(), 2u);  // one heap context per flow
  ASSERT_EQ(sink.matches.size(), 1u);
}

TEST(TieredFlow, HotSlotStaysCompact) {
  // The tentpole storage claim: an in-order MFA flow costs one fixed-size
  // slot — key, offset, epoch, slab handle, the 12-byte (q, m) inline
  // context, and stamps — with no pointers and no heap node.
  using Slot = TieredFlowInspector<core::Mfa>::HotSlot;
  EXPECT_LE(sizeof(Slot), 48u);
}

// --- TieredFlowInspector: eviction ---

TEST(TieredFlow, CapacityEvictionConservesAccounting) {
  const core::Mfa m = build({".*needle"});
  TieredFlowInspector<core::Mfa> insp{m, /*max_flows=*/8};
  CountingSink sink;
  for (std::uint32_t f = 0; f < 100; ++f)
    insp.packet(make_packet(FlowKey{f + 1, 0, 0, 0, 6}, 0, "x"), sink);
  EXPECT_LE(insp.flow_count(), 8u);
  // Conservation: every insert beyond the cap evicted exactly one flow.
  EXPECT_EQ(insp.flow_count() + insp.evicted_count(), 100u);
}

TEST(TieredFlow, CapacityEvictionPrefersStaleOverActive) {
  const core::Mfa m = build({".*needle"});
  TieredFlowInspector<core::Mfa> insp{m, /*max_flows=*/4};
  CountingSink sink;
  const auto touch = [&](std::uint32_t id) {
    insp.packet(make_packet(FlowKey{id, 0, 0, 0, 6}, 0, "x"), sink);
  };
  touch(1);
  touch(2);
  touch(3);
  touch(4);
  // Keep flow 1 hot while churning new flows through the other slots.
  for (std::uint32_t id = 5; id < 40; ++id) {
    touch(1);
    touch(id);
  }
  EXPECT_EQ(insp.flow_count(), 4u);
  // Flow 1 must have survived: touching it again must not change state
  // visible through eviction counters (it is resident, not re-inserted).
  const std::uint64_t evicted_before = insp.evicted_count();
  touch(1);
  EXPECT_EQ(insp.evicted_count(), evicted_before);
}

TEST(TieredFlow, IdleTtlEvictsOnlyIdleFlows) {
  const core::Mfa m = build({".*needle"});
  TieredFlowInspector<core::Mfa> insp{m};
  insp.set_idle_ttl(64);
  CountingSink sink;
  const FlowKey idle_key{1, 0, 0, 0, 6};
  const FlowKey hot_key{2, 0, 0, 0, 6};
  insp.packet(make_packet(idle_key, 0, "x"), sink);
  // Drive the epoch far past the TTL and a full wheel turn while keeping
  // one flow active; the idle flow's wheel entry must surface and evict it.
  for (int i = 0; i < 3000; ++i)
    insp.packet(make_packet(hot_key, 0, "x"), sink);
  EXPECT_EQ(insp.flow_count(), 1u);
  EXPECT_EQ(insp.idle_evicted_count(), 1u);
  EXPECT_EQ(insp.evicted_count(), 0u);  // TTL is not a capacity eviction
}

// --- TieredFlowInspector: lifecycle ---

TEST(TieredFlow, ClearDropsFlowsKeepsMonotoneTotals) {
  const core::Mfa m = build({".*needle"});
  TieredFlowInspector<core::Mfa> insp{m, /*max_flows=*/4};
  CountingSink sink;
  for (std::uint32_t f = 0; f < 10; ++f)
    insp.packet(make_packet(FlowKey{f + 1, 0, 0, 0, 6}, 0, "x"), sink);
  const std::uint64_t evicted = insp.evicted_count();
  EXPECT_GT(evicted, 0u);
  insp.clear();
  EXPECT_EQ(insp.flow_count(), 0u);
  EXPECT_EQ(insp.cold_record_count(), 0u);
  EXPECT_EQ(insp.reassembly_pending_bytes(), 0u);
  EXPECT_EQ(insp.evicted_count(), evicted);  // totals survive the reset
  // And the inspector keeps working afterwards.
  insp.packet(make_packet(FlowKey{1, 0, 0, 0, 6}, 0, "a needle"), sink);
  EXPECT_EQ(insp.flow_count(), 1u);
}

TEST(TieredFlow, QuarantineSurvivesClear) {
  const core::Mfa m = build({".*needle"});
  TieredFlowInspector<core::Mfa> insp{m};
  insp.set_cpu_budget_ns(1);  // any scan work exceeds the budget
  CountingSink sink;
  const FlowKey key{1, 2, 3, 4, 6};
  const std::string big(16384, 'a');
  insp.packet(make_packet(key, 0, big), sink);
  ASSERT_TRUE(insp.is_quarantined(key));
  EXPECT_EQ(insp.quarantined_flow_count(), 1u);
  EXPECT_EQ(insp.flow_count(), 0u);  // quarantine evicts the flow's state
  insp.clear();
  EXPECT_TRUE(insp.is_quarantined(key));  // memory survives worker resets
  insp.packet(make_packet(key, big.size(), big), sink);
  EXPECT_EQ(insp.quarantined_packet_count(), 1u);
  EXPECT_EQ(insp.flow_count(), 0u);
}

TEST(TieredFlow, AdoptEngineResetRestartsFlowsOnTheNewRuleset) {
  const core::Mfa m1 = build({".*abc.*xyz"});
  const core::Mfa m2 = build({".*needle"});
  TieredFlowInspector<core::Mfa> insp{m1};
  CollectingSink sink;
  const FlowKey key{1, 2, 3, 4, 6};
  insp.packet(make_packet(key, 0, "abc"), sink);
  insp.adopt_engine(m2, 1, SwapPolicy::kResetOnNextPacket);
  EXPECT_EQ(insp.current_generation(), 1u);
  // The old partial progress (abc) is gone; the new ruleset applies from
  // the flow's next byte onward, stream offsets preserved.
  insp.packet(make_packet(key, 3, "xyz a needle"), sink);
  ASSERT_EQ(sink.matches.size(), 1u);
  EXPECT_EQ(insp.flows_on_generation(1), 1u);
  EXPECT_EQ(insp.retired_generation_count(), 0u);
}

// --- parity fuzz: tiered vs flat under hostile delivery ---

struct Delivery {
  FlowKey key;
  std::uint64_t seq = 0;
  std::string bytes;  // owned: Packet payloads point here
};

std::string make_content(util::Rng& rng) {
  std::string s;
  const std::size_t chunks = 2 + rng.below(5);
  for (std::size_t i = 0; i < chunks; ++i) {
    s += rng.lower_string(3 + rng.below(20));
    switch (rng.below(5)) {
      case 0: s += "ab12"; break;
      case 1: s += "cd34"; break;
      case 2: s += "wxyz"; break;
      case 3: s += "ha7ck"; break;
      default: break;
    }
  }
  return s;
}

std::vector<Delivery> plan_flow(const FlowKey& key, const std::string& content,
                                util::Rng& rng) {
  std::vector<Delivery> plan;
  std::size_t off = 0;
  while (off < content.size()) {
    const std::size_t len = std::min(content.size() - off, 1 + rng.below(9));
    plan.push_back({key, off, content.substr(off, len)});
    off += len;
  }
  const std::size_t extras = rng.below(3);
  for (std::size_t i = 0; i < extras && !content.empty(); ++i) {
    const std::size_t start = rng.below(content.size());
    const std::size_t len = std::min(content.size() - start, 1 + rng.below(12));
    plan.push_back({key, start, content.substr(start, len)});
  }
  for (std::size_t i = 0; i + 1 < plan.size(); ++i) {
    const std::size_t j =
        i + 1 + rng.below(std::min<std::size_t>(4, plan.size() - i - 1));
    if (rng.chance(0.5)) std::swap(plan[i], plan[j]);
  }
  const std::size_t dups = rng.below(3);
  for (std::size_t i = 0; i < dups; ++i)
    plan.push_back(plan[rng.below(plan.size())]);
  return plan;
}

template <typename InspT>
MatchVec run_plan(InspT& insp, const std::vector<Delivery>& plan) {
  CollectingSink sink;
  for (const auto& d : plan)
    insp.packet(make_packet(d.key, d.seq, d.bytes), sink);
  return sorted(std::move(sink.matches));
}

template <typename InspT>
MatchVec run_plan_batched(InspT& insp, const std::vector<Delivery>& plan,
                          std::size_t burst) {
  std::vector<Packet> packets;
  packets.reserve(plan.size());
  for (const auto& d : plan) packets.push_back(make_packet(d.key, d.seq, d.bytes));
  CollectingSink sink;
  for (std::size_t i = 0; i < packets.size(); i += burst)
    insp.packet_batch(packets.data() + i, std::min(burst, packets.size() - i), sink);
  return sorted(std::move(sink.matches));
}

TEST(TieredFlowFuzz, AgreesWithFlatInspectorUnderHostileDelivery) {
  const std::vector<std::string> sources = {".*ab12.*cd34", ".*wxyz", ".*ha[0-9]ck"};
  const auto inputs = compile_patterns(sources);
  const auto m = core::build_mfa(inputs);
  ASSERT_TRUE(m.has_value());
  const auto d = dfa::build_dfa(nfa::build_nfa(inputs));
  ASSERT_TRUE(d.has_value());

  for (std::uint64_t round = 0; round < 25; ++round) {
    util::Rng rng(4200 + round);
    std::vector<Delivery> plan;
    const std::size_t nflows = 1 + rng.below(6);
    for (std::uint32_t f = 0; f < nflows; ++f) {
      const FlowKey key{f + 1, 99, 1000, 80, 6};
      auto flow_plan = plan_flow(key, make_content(rng), rng);
      plan.insert(plan.end(), flow_plan.begin(), flow_plan.end());
    }
    util::Rng mix(1234 + round);
    for (std::size_t i = 0; i + 1 < plan.size(); ++i)
      if (mix.chance(0.5)) std::swap(plan[i], plan[i + 1]);

    // The flat inspector is the semantic reference.
    FlowInspector<core::Mfa> flat{*m};
    const MatchVec expected = run_plan(flat, plan);

    TieredFlowInspector<core::Mfa> tiered{*m};
    EXPECT_EQ(run_plan(tiered, plan), expected) << "round " << round;

    // Batched delivery, same plan, must be byte-for-byte equivalent.
    TieredFlowInspector<core::Mfa> batched{*m};
    EXPECT_EQ(run_plan_batched(batched, plan, 7), expected) << "round " << round;

    // DFA under tiering (inline 4-byte state) agrees with MFA under tiering.
    TieredFlowInspector<dfa::Dfa> tiered_dfa{*d};
    EXPECT_EQ(run_plan(tiered_dfa, plan), expected) << "round " << round;

    // A tiny bounded table forces constant eviction churn through the wheel
    // and cuckoo kicks; accounting must stay conserved (matches may differ
    // since evicted flows forget state — that is the documented semantics).
    TieredFlowInspector<core::Mfa> bounded{*m, /*max_flows=*/3};
    run_plan(bounded, plan);
    EXPECT_LE(bounded.flow_count(), 3u) << "round " << round;
  }
}

TEST(TieredFlowFuzz, GrowUnderBatchedInsertBurstKeepsDeliveryExact) {
  // Many brand-new flows inside single packet_batch bursts force table
  // growth (and job re-resolution) while jobs are queued.
  const core::Mfa m = build({".*needle"});
  FlowInspector<core::Mfa> flat{m};
  TieredFlowInspector<core::Mfa> tiered{m};
  std::vector<Delivery> plan;
  util::Rng rng(77);
  for (std::uint32_t f = 0; f < 400; ++f) {
    const FlowKey key{f + 1, 7, 7, 7, 6};
    plan.push_back({key, 0, "a nee"});
    plan.push_back({key, 5, "dle!"});
  }
  for (std::size_t i = 0; i + 1 < plan.size(); ++i)
    if (rng.chance(0.5)) std::swap(plan[i], plan[i + 1]);
  const MatchVec expected = run_plan(flat, plan);
  EXPECT_EQ(expected.size(), 400u);
  EXPECT_EQ(run_plan_batched(tiered, plan, 64), expected);
  EXPECT_EQ(tiered.flow_count(), 400u);
}

}  // namespace
}  // namespace mfa::flow
