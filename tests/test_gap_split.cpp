// Gap decomposition (paper Sec. VI future work): `.*A.{n,}B` splits into
// pieces whose filter records the offset of A's match and requires B to end
// at least n + |B| bytes later. The master invariant is unchanged: the MFA
// must match exactly what the NFA of the original pattern matches.
#include <gtest/gtest.h>

#include "engine_test_util.h"
#include "regex/sample.h"
#include "split/splitter.h"
#include "util/rng.h"

namespace mfa::split {
namespace {

using filter::kNone;
using mfa::testing::compile_patterns;
using mfa::testing::reference_matches;
using mfa::testing::sorted;

TEST(GapSplit, BasicDecomposition) {
  const SplitResult r = split_patterns(compile_patterns({".*abc.{5,}xyz"}));
  ASSERT_EQ(r.pieces.size(), 2u);
  EXPECT_EQ(r.stats.gap_splits, 1u);
  EXPECT_EQ(r.program.position_slots, 1u);
  // A-piece: set bit 0, record slot 0.
  EXPECT_EQ(r.program.actions[0].set, 0);
  EXPECT_EQ(r.program.actions[0].set_slot, 0);
  // B-piece: test bit 0 with min_gap = 5 + |xyz| = 8.
  EXPECT_EQ(r.program.actions[1].test, 0);
  EXPECT_EQ(r.program.actions[1].test_slot, 0);
  EXPECT_EQ(r.program.actions[1].min_gap, 8);
  EXPECT_EQ(r.program.actions[1].report, 1);
}

TEST(GapSplit, DotPlusIsGapOne) {
  const SplitResult r = split_patterns(compile_patterns({".*abc.+xyz"}));
  ASSERT_EQ(r.pieces.size(), 2u);
  EXPECT_EQ(r.program.actions[1].min_gap, 4);  // 1 + |xyz|
}

TEST(GapSplit, VariableLengthBNotSplit) {
  // B = xy+z has no fixed length: gap cannot be translated, so fold.
  const SplitResult r = split_patterns(compile_patterns({".*abc.{5,}xy+z"}));
  EXPECT_EQ(r.pieces.size(), 1u);
  EXPECT_GE(r.stats.boundaries_rejected, 1u);
}

TEST(GapSplit, OverlappingSegmentsAreFineWithGaps) {
  // abc/bcd overlap kills a dot-star split (Sec. IV-A) but NOT a gap split:
  // the offset requirement makes overlap impossible.
  const SplitResult dot = split_patterns(compile_patterns({".*abc.*bcd"}));
  EXPECT_EQ(dot.pieces.size(), 1u);
  const SplitResult gap = split_patterns(compile_patterns({".*abc.{2,}bcd"}));
  EXPECT_EQ(gap.pieces.size(), 2u);
}

TEST(GapSplit, AblationDisable) {
  Options opts;
  opts.enable_gap = false;
  const SplitResult r = split_patterns(compile_patterns({".*abc.{5,}xyz"}), opts);
  EXPECT_EQ(r.pieces.size(), 1u);
  EXPECT_EQ(r.stats.gap_splits, 0u);
}

TEST(GapSplit, SeparatorRunsSumGaps) {
  // `.*.{2,}.+` collapses to one gap of 3.
  const SplitResult r = split_patterns(compile_patterns({".*abc.*.{2,}.+xyz"}));
  ASSERT_EQ(r.pieces.size(), 2u);
  EXPECT_EQ(r.program.actions[1].min_gap, 3 + 3);  // gap 3 + |xyz|
}

TEST(GapSplit, LeadingGapKept) {
  // `.{4,}abc` constrains distance from stream start; it must fold into the
  // first segment rather than be dropped like a leading dot-star.
  const SplitResult r = split_patterns(compile_patterns({".{4,}abc"}));
  ASSERT_EQ(r.pieces.size(), 1u);
  // Behavior check below in the MFA end-to-end tests.
}

MatchVec mfa_scan(const std::vector<std::string>& pats, const std::string& input) {
  auto m = core::build_mfa(compile_patterns(pats));
  EXPECT_TRUE(m.has_value());
  core::MfaScanner s(*m);
  return sorted(s.scan(input));
}

TEST(GapMatch, EnforcesMinimumDistance) {
  const std::vector<std::string> pat = {".*ab.{3,}yz"};
  // ab then yz with gaps 0..4 between them.
  EXPECT_TRUE(mfa_scan(pat, "abyz").empty());
  EXPECT_TRUE(mfa_scan(pat, "ab.yz").empty());
  EXPECT_TRUE(mfa_scan(pat, "ab..yz").empty());
  EXPECT_EQ(mfa_scan(pat, "ab...yz").size(), 1u);
  EXPECT_EQ(mfa_scan(pat, "ab....yz").size(), 1u);
}

TEST(GapMatch, EarliestAMatters) {
  // A occurs twice; only the earlier one satisfies the gap.
  const std::vector<std::string> pat = {".*ab.{4,}yz"};
  const MatchVec got = mfa_scan(pat, "ab..ab.yz");
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got, reference_matches(pat, "ab..ab.yz"));
}

TEST(GapMatch, OverlapCannotCheat) {
  // B's bytes overlapping A must not count toward the gap.
  const std::vector<std::string> pat = {".*abc.{1,}bcd"};
  EXPECT_TRUE(mfa_scan(pat, "abcd").empty());
  EXPECT_TRUE(mfa_scan(pat, "abcbcd").empty());    // gap 0
  EXPECT_EQ(mfa_scan(pat, "abc.bcd").size(), 1u);  // gap 1
  EXPECT_EQ(mfa_scan(pat, "abc.bcd"), reference_matches(pat, "abc.bcd"));
}

TEST(GapMatch, ChainedGapAndDotStar) {
  const std::vector<std::string> pat = {".*aa.{2,}bb.*cc"};
  for (const std::string input : std::vector<std::string>{
           "aa..bb cc", "aabb cc", "aa.bb cc", "aa...bb...cc", "cc aa..bb",
           "aa..bbcc", "bb aa cc", "aa..bb"}) {
    EXPECT_EQ(mfa_scan(pat, input), sorted(reference_matches(pat, input))) << input;
  }
}

TEST(GapMatch, AnchoredGapPattern) {
  const std::vector<std::string> pat = {"^hd.{3,}tl"};
  EXPECT_TRUE(mfa_scan(pat, "hd..tl").empty());
  EXPECT_EQ(mfa_scan(pat, "hd...tl").size(), 1u);
  EXPECT_TRUE(mfa_scan(pat, ".hd...tl").empty());  // not at start
}

TEST(GapMatch, LeadingGapSemantics) {
  const std::vector<std::string> pat = {".{4,}abc"};
  EXPECT_TRUE(mfa_scan(pat, "abc").empty());
  EXPECT_TRUE(mfa_scan(pat, "...abc").empty());   // only 3 bytes before
  EXPECT_EQ(mfa_scan(pat, "....abc").size(), 1u);
  EXPECT_EQ(mfa_scan(pat, "....abc"), reference_matches(pat, "....abc"));
}

class GapPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GapPropertyTest, RandomGapPatternsMatchReference) {
  util::Rng rng(GetParam());
  std::vector<std::string> pats;
  const int npat = 1 + static_cast<int>(rng.below(3));
  for (int i = 0; i < npat; ++i) {
    std::string p = ".*" + rng.lower_string(2 + rng.below(3));
    const int links = 1 + static_cast<int>(rng.below(2));
    for (int j = 0; j < links; ++j) {
      switch (rng.below(3)) {
        case 0: p += ".*"; break;
        case 1: p += ".{" + std::to_string(1 + rng.below(5)) + ",}"; break;
        default: p += ".+"; break;
      }
      p += rng.lower_string(2 + rng.below(3));
    }
    pats.push_back(std::move(p));
  }
  const auto inputs = compile_patterns(pats);
  auto m = core::build_mfa(inputs);
  ASSERT_TRUE(m.has_value());
  const nfa::Nfa reference = nfa::build_nfa(inputs);
  for (int round = 0; round < 30; ++round) {
    std::string input;
    for (int c = 1 + static_cast<int>(rng.below(4)); c > 0; --c) {
      if (rng.chance(0.6))
        input += regex::sample_match(inputs[rng.below(inputs.size())].regex, rng);
      else
        input += rng.lower_string(rng.below(8));
    }
    core::MfaScanner ms(*m);
    nfa::NfaScanner ns(reference);
    EXPECT_EQ(sorted(ms.scan(input)), sorted(ns.scan(input))) << input;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GapPropertyTest,
                         ::testing::Values(21, 22, 23, 24, 25, 26, 27, 28));

}  // namespace
}  // namespace mfa::split
