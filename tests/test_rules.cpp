#include "rules/rules.h"

#include <gtest/gtest.h>

#include "engine_test_util.h"
#include "mfa/mfa.h"

namespace mfa::rules {
namespace {

TEST(ContentToRegex, PlainText) {
  EXPECT_EQ(*content_to_regex("abc", false), "abc");
}

TEST(ContentToRegex, EscapesMetacharacters) {
  EXPECT_EQ(*content_to_regex("cmd.exe", false), "cmd\\.exe");
  EXPECT_EQ(*content_to_regex("a(b)c", false), "a\\(b\\)c");
  EXPECT_EQ(*content_to_regex("x*y+z?", false), "x\\*y\\+z\\?");
}

TEST(ContentToRegex, HexSections) {
  EXPECT_EQ(*content_to_regex("|0d 0a|end", false), "\\x0d\\x0aend");
  EXPECT_EQ(*content_to_regex("ab|20|cd", false), "ab cd");
  EXPECT_EQ(*content_to_regex("|41 42|", false), "AB");
}

TEST(ContentToRegex, NocaseFoldsPerCharacter) {
  EXPECT_EQ(*content_to_regex("Ab1", true), "[aA][bB]1");
}

TEST(ContentToRegex, Failures) {
  EXPECT_FALSE(content_to_regex("", false).has_value());
  EXPECT_FALSE(content_to_regex("|0d", false).has_value());     // unterminated
  EXPECT_FALSE(content_to_regex("|xq|", false).has_value());    // bad hex
  EXPECT_FALSE(content_to_regex("|0|", false).has_value());     // odd digits
}

constexpr const char* kRuleText = R"(
# Community web rules (excerpt)
alert tcp $EXTERNAL_NET any -> $HOME_NET 80 (msg:"WEB-IIS cmd.exe access"; content:"cmd.exe"; nocase; sid:1002; rev:7;)
alert tcp any any -> any 80 (msg:"chained download"; content:"wget "; content:"chmod"; sid:2001;)
alert tcp any any -> any any (msg:"pcre rule"; pcre:"/.*User-Agent:[^\r\n]*sqlmap/"; sid:3001; classtype:web-application-attack;)

alert udp any any -> any 53 (msg:"hex content"; content:"|03|www|07|"; sid:4001;)
alert tcp any any -> any 25 (msg:"continued \
rule"; content:"MAIL FROM"; sid:5001;)
)";

TEST(Rules, ParsesWellFormedRules) {
  const LoadResult r = parse_rules(kRuleText);
  ASSERT_TRUE(r.ok()) << (r.errors.empty() ? "" : r.errors[0].message);
  ASSERT_EQ(r.rules.size(), 5u);
  EXPECT_EQ(r.rules[0].sid, 1002u);
  EXPECT_EQ(r.rules[0].msg, "WEB-IIS cmd.exe access");
  EXPECT_EQ(r.rules[0].action, "alert");
  EXPECT_EQ(r.rules[0].proto, "tcp");
  EXPECT_EQ(r.rules[0].pattern, ".*[cC][mM][dD]\\.[eE][xX][eE]");
  EXPECT_EQ(r.rules[1].pattern, ".*wget .*chmod");
  EXPECT_EQ(r.rules[2].pattern, "/.*User-Agent:[^\\r\\n]*sqlmap/");
  EXPECT_EQ(r.rules[3].pattern, ".*\\x03www\\x07");
  EXPECT_EQ(r.rules[4].sid, 5001u);
}

TEST(Rules, BadRulesReportedAndSkipped) {
  const LoadResult r = parse_rules(
      "alert tcp any any -> any any (msg:\"no sid\"; content:\"x\";)\n"
      "alert tcp any any -> any any (msg:\"no body content\"; sid:7;)\n"
      "not even a rule at all\n"
      "alert tcp any any -> any any (msg:\"good\"; content:\"ok\"; sid:8;)\n"
      "alert tcp any any -> any any (msg:\"bad pcre\"; pcre:\"/a(/\"; sid:9;)\n");
  EXPECT_EQ(r.rules.size(), 1u);
  EXPECT_EQ(r.rules[0].sid, 8u);
  EXPECT_EQ(r.errors.size(), 4u);
  for (const auto& e : r.errors) EXPECT_GT(e.line, 0u);
}

TEST(Rules, OrphanNocaseIsDiagnosed) {
  // nocase before any content used to be dropped silently, leaving a
  // case-sensitive rule the author believed was case-insensitive.
  const LoadResult r = parse_rules(
      "# leading comment\n"
      "alert tcp any any -> any any (msg:\"orphan\"; nocase; content:\"x\"; sid:11;)\n"
      "alert tcp any any -> any any (msg:\"fine\"; content:\"y\"; nocase; sid:12;)\n");
  ASSERT_EQ(r.rules.size(), 1u);
  EXPECT_EQ(r.rules[0].sid, 12u);
  ASSERT_EQ(r.errors.size(), 1u);
  EXPECT_EQ(r.errors[0].line, 2u);
  EXPECT_NE(r.errors[0].message.find("nocase"), std::string::npos);
}

TEST(Rules, DuplicatePcreIsDiagnosed) {
  // A second pcre used to overwrite the first silently.
  const LoadResult r = parse_rules(
      "alert tcp any any -> any any (msg:\"dup\"; pcre:\"/abc/\"; "
      "pcre:\"/def/\"; sid:21;)\n"
      "alert tcp any any -> any any (msg:\"single\"; pcre:\"/ghi/\"; sid:22;)\n");
  ASSERT_EQ(r.rules.size(), 1u);
  EXPECT_EQ(r.rules[0].sid, 22u);
  ASSERT_EQ(r.errors.size(), 1u);
  EXPECT_EQ(r.errors[0].line, 1u);
  EXPECT_NE(r.errors[0].message.find("pcre"), std::string::npos);
}

// Compile `pattern` alone and scan `input`, returning the match count.
std::size_t match_count(const std::string& pattern, const std::string& input) {
  regex::ParseResult parsed = regex::parse(pattern);
  if (!parsed.ok()) {
    ADD_FAILURE() << "pattern does not parse: " << pattern;
    return 0;
  }
  auto mfa = core::build_mfa({nfa::PatternInput{*parsed.regex, 1}});
  if (!mfa) {
    ADD_FAILURE() << "mfa build failed: " << pattern;
    return 0;
  }
  core::MfaScanner scanner(*mfa);
  return scanner.scan(input).size();
}

TEST(ContentToRegex, HexMetacharactersMatchLiterally) {
  // |2e 2a| is the two literal bytes ".*", not "any run of anything".
  const auto re = content_to_regex("|2e 2a|", false);
  ASSERT_TRUE(re.has_value());
  EXPECT_EQ(match_count(".*" + *re, "payload .* here"), 1u);
  EXPECT_EQ(match_count(".*" + *re, "no dotstar bytes"), 0u);
  // Same under nocase: folding must not unescape metacharacters.
  const auto folded = content_to_regex("|2e 2a|", true);
  ASSERT_TRUE(folded.has_value());
  EXPECT_EQ(match_count(".*" + *folded, "payload .* here"), 1u);
  EXPECT_EQ(match_count(".*" + *folded, "no dotstar bytes"), 0u);
}

TEST(ContentToRegex, AllByteValuesRoundTripThroughHexPath) {
  // Every byte delivered via |hex| must compile and match exactly itself
  // (its case pair under nocase, for ASCII letters only).
  for (int b = 0; b < 256; ++b) {
    char hex[16];
    std::snprintf(hex, sizeof hex, "|%02x|", b);
    for (const bool nocase : {false, true}) {
      const auto re = content_to_regex(hex, nocase);
      ASSERT_TRUE(re.has_value()) << b;
      const std::string self(1, static_cast<char>(b));
      EXPECT_EQ(match_count(*re, self), 1u) << "byte " << b << " nocase " << nocase;
      const bool upper = b >= 'A' && b <= 'Z';
      const bool lower = b >= 'a' && b <= 'z';
      if (upper || lower) {
        const std::string other(1, static_cast<char>(upper ? b + 32 : b - 32));
        EXPECT_EQ(match_count(*re, other), nocase ? 1u : 0u)
            << "byte " << b << " nocase " << nocase;
      } else if (b != static_cast<int>(static_cast<unsigned char>('\n'))) {
        // A different byte must never match (newline skipped: '.'-free
        // single-byte patterns still never equal it anyway).
        const std::string other(1, static_cast<char>(b ^ 1));
        EXPECT_EQ(match_count(*re, other), 0u) << "byte " << b;
      }
    }
  }
}

TEST(ContentToRegex, AllByteValuesRoundTripThroughTextPath) {
  // Same sweep through the text path. '|' is excluded (it opens a hex
  // section in the content syntax — deliver it as |7c| instead).
  for (int b = 1; b < 256; ++b) {
    if (b == '|') continue;
    const std::string content(1, static_cast<char>(b));
    for (const bool nocase : {false, true}) {
      const auto re = content_to_regex(content, nocase);
      ASSERT_TRUE(re.has_value()) << b;
      const std::string self(1, static_cast<char>(b));
      EXPECT_EQ(match_count(*re, self), 1u) << "byte " << b << " nocase " << nocase;
      const bool upper = b >= 'A' && b <= 'Z';
      const bool lower = b >= 'a' && b <= 'z';
      if (upper || lower) {
        const std::string other(1, static_cast<char>(upper ? b + 32 : b - 32));
        EXPECT_EQ(match_count(*re, other), nocase ? 1u : 0u)
            << "byte " << b << " nocase " << nocase;
      }
    }
  }
}

TEST(Rules, CommentsAndBlankLinesIgnored) {
  const LoadResult r = parse_rules("\n# comment\n   \n#another\n");
  EXPECT_TRUE(r.rules.empty());
  EXPECT_TRUE(r.errors.empty());
}

TEST(Rules, EscapedQuoteInsideMsg) {
  const LoadResult r = parse_rules(
      "alert tcp any any -> any any (msg:\"say \\\"hi\\\"; now\"; content:\"x\"; sid:1;)\n");
  ASSERT_EQ(r.rules.size(), 1u);
  EXPECT_EQ(r.rules[0].msg, "say \"hi\"; now");
}

TEST(Rules, MissingFileIsOneError) {
  const LoadResult r = load_rules_file("/nonexistent/rules.rules");
  EXPECT_TRUE(r.rules.empty());
  ASSERT_EQ(r.errors.size(), 1u);
  EXPECT_EQ(r.errors[0].line, 0u);
}

TEST(Rules, RoundTripThroughFile) {
  const std::string path = ::testing::TempDir() + "/mfa_rules_test.rules";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs(kRuleText, f);
  std::fclose(f);
  const LoadResult r = load_rules_file(path);
  EXPECT_EQ(r.rules.size(), 5u);
  std::remove(path.c_str());
}

TEST(Rules, EndToEndThroughMfa) {
  // Compile loaded rules into an MFA and confirm sid-keyed alerts.
  const LoadResult r = parse_rules(kRuleText);
  ASSERT_EQ(r.rules.size(), 5u);
  auto mfa = core::build_mfa(to_pattern_inputs(r.rules));
  ASSERT_TRUE(mfa.has_value());
  core::MfaScanner scanner(*mfa);
  const std::string payload =
      "GET /scripts/..%255c../winnt/system32/CMD.exe?/c+dir HTTP/1.0\r\n"
      "User-Agent: sqlmap/1.2\r\n\r\n"
      "wget http://x/p.sh && chmod 755 p.sh";
  const MatchVec matches = mfa::testing::sorted(scanner.scan(payload));
  std::set<std::uint32_t> sids;
  for (const Match& m : matches) sids.insert(m.id);
  EXPECT_TRUE(sids.count(1002));  // CMD.exe, nocase
  EXPECT_TRUE(sids.count(2001));  // wget ... chmod
  EXPECT_TRUE(sids.count(3001));  // sqlmap UA
  EXPECT_FALSE(sids.count(4001));
}

TEST(Rules, ToPatternInputsUsesSids) {
  const LoadResult r = parse_rules(kRuleText);
  const auto inputs = to_pattern_inputs(r.rules);
  ASSERT_EQ(inputs.size(), r.rules.size());
  EXPECT_EQ(inputs[0].id, 1002u);
  EXPECT_EQ(inputs[2].id, 3001u);
}

}  // namespace
}  // namespace mfa::rules
