// Hostile-traffic soak: randomized fault schedules (crashes, stalls,
// corrupt packets, allocation failures, queue saturation) over realistic
// traffic, checked against two contracts the robustness layer guarantees:
//  1. Exact accounting — every submitted packet is scanned or counted in
//     exactly one shed bucket (submitted == scanned + shed_total), per
//     shard and in aggregate, no matter which faults fire.
//  2. Parity on undisturbed flows — flows untouched by sheds, crashes and
//     restarts produce byte-identical per-flow matches to a sequential
//     FlowInspector, and the NFA/DFA/MFA engines agree with each other.
// Plus regressions for watchdog restart, load-shedding policies, per-flow
// CPU quarantine, and bounded-deadline shutdown.
#include "pipeline/pipeline.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dfa/dfa.h"
#include "engine_test_util.h"
#include "flow/tiered.h"
#include "mfa/mfa.h"
#include "nfa/nfa.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "trace/trace.h"
#include "util/faultpoint.h"

namespace mfa::pipeline {
namespace {

using mfa::testing::compile_patterns;

using PerFlowMatches =
    std::unordered_map<flow::FlowKey, MatchVec, flow::FlowKeyHash>;

/// Sequential ground truth: per-flow sorted matches from one FlowInspector.
template <typename EngineT>
PerFlowMatches per_flow_reference(const EngineT& engine, const trace::Trace& t) {
  flow::FlowInspector<EngineT> insp{engine};
  PerFlowMatches out;
  t.for_each_packet([&](const flow::Packet& p) {
    insp.packet(p, [&](std::uint32_t id, std::uint64_t end) {
      out[p.key].push_back(Match{id, end});
    });
  });
  for (auto& [key, v] : out) std::sort(v.begin(), v.end());
  return out;
}

const std::vector<std::string> kPatterns = {".*attack[0-9]", ".*worm77",
                                            ".*beacon.ping"};

trace::Trace make_soak_trace(std::uint64_t seed) {
  // Big enough for a real flow population (dozens of flows): the soak
  // excludes every flow on a disturbed shard, so it needs survivors left
  // over to compare.
  return trace::make_real_life(trace::RealLifeProfile::kCyberDefense, 3000000,
                               seed, {"attack5 here", "worm77", "beaconXping"});
}

void check_invariant(const ShardStats& s, const char* what) {
  EXPECT_EQ(s.submitted, s.scanned + s.shed_total())
      << what << ": submitted=" << s.submitted << " scanned=" << s.scanned
      << " shed{adm=" << s.shed_admission << " byp=" << s.shed_bypass
      << " cor=" << s.shed_corrupt << " cra=" << s.shed_crash
      << " qua=" << s.shed_quarantine << " fov=" << s.shed_failover << "}";
}

class SoakTest : public ::testing::Test {
 protected:
  void SetUp() override { util::FaultRegistry::instance().disarm_all(); }
  void TearDown() override { util::FaultRegistry::instance().disarm_all(); }
};

TEST_F(SoakTest, NfaDfaMfaAgreePerFlowOnCleanTraffic) {
  const auto inputs = compile_patterns(kPatterns);
  const nfa::Nfa n = nfa::build_nfa(inputs);
  const auto d = dfa::build_dfa(n);
  ASSERT_TRUE(d.has_value());
  const auto m = core::build_mfa(inputs);
  ASSERT_TRUE(m.has_value());
  const trace::Trace t = make_soak_trace(11);
  const PerFlowMatches ref_n = per_flow_reference(n, t);
  const PerFlowMatches ref_d = per_flow_reference(*d, t);
  const PerFlowMatches ref_m = per_flow_reference(*m, t);
  EXPECT_FALSE(ref_n.empty());
  EXPECT_EQ(ref_n.size(), ref_d.size());
  EXPECT_EQ(ref_n.size(), ref_m.size());
  for (const auto& [key, matches] : ref_n) {
    const auto itd = ref_d.find(key);
    const auto itm = ref_m.find(key);
    ASSERT_NE(itd, ref_d.end());
    ASSERT_NE(itm, ref_m.end());
    EXPECT_EQ(matches, itd->second) << "NFA vs DFA";
    EXPECT_EQ(matches, itm->second) << "NFA vs MFA";
  }
}

TEST_F(SoakTest, FaultSoakKeepsAccountingExactAndUndisturbedFlowsIdentical) {
  if (!util::faultpoints_enabled())
    GTEST_SKIP() << "fault points compiled out (Release build)";
  const auto m = core::build_mfa(compile_patterns(kPatterns));
  ASSERT_TRUE(m.has_value());
  const trace::Trace t = make_soak_trace(23);
  const PerFlowMatches reference = per_flow_reference(*m, t);

  std::size_t compared_across_seeds = 0;
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    auto& reg = util::FaultRegistry::instance();
    reg.disarm_all();
    // Two deterministic crashes early on, five corrupt packets, a pinch of
    // transient queue-full, one allocation failure, and short random
    // stalls: enough chaos to exercise every recovery path in one run.
    reg.arm("pipeline.worker.crash",
            {seed, 1000000, /*after=*/20, /*max_fires=*/2, 0});
    reg.arm("pipeline.packet.corrupt",
            {seed + 1, 1000000, /*after=*/10, /*max_fires=*/5, 0});
    reg.arm("pipeline.queue.full",
            {seed + 2, 20000, 0, ~std::uint64_t{0}, 0});
    reg.arm("flow.table.alloc",
            {seed + 3, 1000000, /*after=*/400, /*max_fires=*/1, 0});
    reg.arm("pipeline.worker.stall",
            {seed + 4, 300000, 0, /*max_fires=*/10, /*param=*/2});

    obs::MetricsRegistry metrics(3);
    std::mutex mu;
    std::unordered_set<flow::FlowKey, flow::FlowKeyHash> shed_flows;
    std::atomic<std::uint64_t> sink_calls{0};

    Options opt;
    opt.shards = 3;
    opt.queue_capacity = 512;
    opt.batch_size = 16;
    opt.collect_flow_matches = true;
    opt.metrics = &metrics;
    opt.watchdog = true;
    opt.watchdog_interval_ms = 1;
    opt.stall_timeout_ms = 10;
    opt.max_worker_restarts = 2;
    opt.shed_policy = ShedPolicy::kDropNewest;
    opt.shed_sink = [&](const flow::Packet& p, ShedReason) {
      sink_calls.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(mu);
      shed_flows.insert(p.key);
    };

    ShardedInspector<core::Mfa> pipe(*m, opt);
    pipe.start();
    t.for_each_packet([&](const flow::Packet& p) { pipe.submit(p); });
    pipe.finish();

    const ShardStats total = pipe.totals();
    EXPECT_EQ(total.submitted, t.packet_count()) << "seed " << seed;
    check_invariant(total, "totals");
    for (std::size_t i = 0; i < pipe.stats().size(); ++i)
      check_invariant(pipe.stats()[i], "shard");
    // The schedule guarantees at least the crashes and corruptions landed.
    EXPECT_GE(total.shed_corrupt, 1u) << "seed " << seed;
    EXPECT_GE(total.worker_restarts, 1u) << "seed " << seed;
    // Telemetry mirror agrees with the merged stats (nothing abandoned, so
    // every shed was mirrored).
    std::uint64_t mirrored_shed = 0;
    for (const auto& s : metrics.snapshot().shards) mirrored_shed += s.shed_packets;
    EXPECT_EQ(mirrored_shed, total.shed_total()) << "seed " << seed;
    // shed_sink saw at least every distinctly-counted shed (crash bursts
    // may over-notify, never under-notify).
    EXPECT_GE(sink_calls.load(), total.shed_total()) << "seed " << seed;

    // Parity on undisturbed flows: exclude flows with any shed packet and
    // flows on shards whose worker was restarted or failed over (a restart
    // wipes the whole shard's contexts).
    std::vector<bool> shard_disturbed(pipe.shard_count(), false);
    for (std::size_t i = 0; i < pipe.stats().size(); ++i)
      shard_disturbed[i] = pipe.stats()[i].worker_restarts > 0 ||
                           pipe.stats()[i].shed_failover > 0;
    PerFlowMatches got;
    for (const FlowMatch& fm : pipe.flow_matches()) got[fm.key].push_back(fm.match);
    for (auto& [key, v] : got) std::sort(v.begin(), v.end());
    std::size_t compared = 0;
    for (const auto& [key, expected] : reference) {
      if (shed_flows.count(key) != 0) continue;
      if (shard_disturbed[pipe.shard_of(key)]) continue;
      const auto it = got.find(key);
      ASSERT_NE(it, got.end()) << "undisturbed flow lost its matches";
      EXPECT_EQ(it->second, expected) << "seed " << seed;
      ++compared;
    }
    // And no undisturbed flow may have grown matches out of nowhere.
    for (const auto& [key, v] : got) {
      if (shed_flows.count(key) != 0 || shard_disturbed[pipe.shard_of(key)])
        continue;
      EXPECT_NE(reference.find(key), reference.end())
          << "matches on a flow the reference never matched";
    }
    std::printf("soak seed %llu: %llu submitted, %llu scanned, %llu shed "
                "(%llu crash, %llu corrupt, %llu admission), %llu restarts, "
                "%zu/%zu flows compared\n",
                (unsigned long long)seed, (unsigned long long)total.submitted,
                (unsigned long long)total.scanned,
                (unsigned long long)total.shed_total(),
                (unsigned long long)total.shed_crash,
                (unsigned long long)total.shed_corrupt,
                (unsigned long long)total.shed_admission,
                (unsigned long long)total.worker_restarts, compared,
                reference.size());
    compared_across_seeds += compared;
  }
  // A single seed may legitimately compare nothing when the host is
  // oversubscribed (starved workers push admission shedding across every
  // flow), but all three seeds going vacuous means the rates are wrong
  // and the parity check never ran.
  EXPECT_GT(compared_across_seeds, 0u)
      << "soak excluded every flow in every seed — not a useful run";
}

TEST_F(SoakTest, WatchdogRestartsCrashedWorkerAndRunContinues) {
  if (!util::faultpoints_enabled())
    GTEST_SKIP() << "fault points compiled out (Release build)";
  const auto m = core::build_mfa(compile_patterns(kPatterns));
  ASSERT_TRUE(m.has_value());
  const trace::Trace t = make_soak_trace(31);
  util::FaultRegistry::instance().arm(
      "pipeline.worker.crash", {9, 1000000, /*after=*/0, /*max_fires=*/1, 0});

  Options opt;
  opt.shards = 2;
  opt.watchdog = true;
  opt.watchdog_interval_ms = 1;
  opt.max_worker_restarts = 3;
  ShardedInspector<core::Mfa> pipe(*m, opt);
  pipe.start();
  t.for_each_packet([&](const flow::Packet& p) { pipe.submit(p); });
  pipe.finish();

  const ShardStats total = pipe.totals();
  EXPECT_EQ(total.worker_restarts, 1u);
  EXPECT_GE(total.shed_crash, 1u);
  EXPECT_GT(total.scanned, 0u) << "the restarted worker must keep scanning";
  check_invariant(total, "totals");
}

TEST_F(SoakTest, RepeatCrasherFailsOverWithFullAccounting) {
  if (!util::faultpoints_enabled())
    GTEST_SKIP() << "fault points compiled out (Release build)";
  const auto m = core::build_mfa(compile_patterns(kPatterns));
  ASSERT_TRUE(m.has_value());
  const trace::Trace t = make_soak_trace(37);
  // Every burst crashes: the single shard burns through its restart budget
  // and must fail over — all remaining traffic shed, none lost.
  util::FaultRegistry::instance().arm("pipeline.worker.crash",
                                      {5, 1000000, 0, ~std::uint64_t{0}, 0});
  Options opt;
  opt.shards = 1;
  opt.watchdog = true;
  opt.watchdog_interval_ms = 1;
  opt.max_worker_restarts = 2;
  ShardedInspector<core::Mfa> pipe(*m, opt);
  pipe.start();
  t.for_each_packet([&](const flow::Packet& p) { pipe.submit(p); });
  pipe.finish();

  const ShardStats total = pipe.totals();
  EXPECT_EQ(total.worker_restarts, 2u);
  EXPECT_EQ(total.scanned, 0u);
  EXPECT_GE(total.shed_failover, 1u) << "post-failover traffic must be shed";
  check_invariant(total, "totals");
  EXPECT_EQ(total.submitted, t.packet_count());
}

TEST_F(SoakTest, DropNewestShedsUnderOverloadAndAccountsExactly) {
  const auto m = core::build_mfa(compile_patterns({".*zzz9q"}));
  ASSERT_TRUE(m.has_value());
  // One slow shard: 16 KiB packets cost the worker far more than submit()
  // costs the producer, so the tiny queue must overflow its watermark.
  const std::string payload(16384, 'a');
  constexpr std::size_t kPackets = 1000;
  Options opt;
  opt.shards = 1;
  opt.queue_capacity = 64;
  opt.batch_size = 1;
  opt.shed_policy = ShedPolicy::kDropNewest;
  opt.shed_high_water = 32;
  opt.shed_low_water = 8;
  ShardedInspector<core::Mfa> pipe(*m, opt);
  pipe.start();
  const flow::FlowKey key{1, 2, 3, 4, 6};
  std::uint64_t off = 0;
  for (std::size_t i = 0; i < kPackets; ++i) {
    // Admitted packets advance the stream; shed ones are simply absent
    // upstream bytes (gaps), exactly like real drop-based shedding.
    pipe.submit(flow::Packet{key, off,
                             reinterpret_cast<const std::uint8_t*>(payload.data()),
                             static_cast<std::uint32_t>(payload.size())});
    off += payload.size();
  }
  pipe.finish();
  const ShardStats total = pipe.totals();
  EXPECT_EQ(total.submitted, kPackets);
  EXPECT_GT(total.shed_admission, 0u) << "overload never engaged shedding";
  EXPECT_GT(total.scanned, 0u);
  check_invariant(total, "totals");
}

TEST_F(SoakTest, BypassToCountKeepsCountingWithoutScanning) {
  const auto m = core::build_mfa(compile_patterns({".*zzz9q"}));
  ASSERT_TRUE(m.has_value());
  const std::string payload(16384, 'b');
  Options opt;
  opt.shards = 1;
  opt.queue_capacity = 64;
  opt.batch_size = 1;
  opt.shed_policy = ShedPolicy::kBypassToCount;
  opt.shed_high_water = 16;
  ShardedInspector<core::Mfa> pipe(*m, opt);
  pipe.start();
  const flow::FlowKey key{9, 8, 7, 6, 17};
  for (std::size_t i = 0; i < 800; ++i)
    pipe.submit(flow::Packet{key, i * payload.size(),
                             reinterpret_cast<const std::uint8_t*>(payload.data()),
                             static_cast<std::uint32_t>(payload.size())});
  pipe.finish();
  const ShardStats total = pipe.totals();
  EXPECT_GT(total.shed_bypass, 0u);
  EXPECT_GT(total.shed_bytes, 0u) << "bypassed bytes must still be counted";
  check_invariant(total, "totals");
}

TEST_F(SoakTest, HostileFlowQuarantinedWhileSiblingsKeepMatching) {
  const auto m = core::build_mfa(compile_patterns({".*needle77"}));
  ASSERT_TRUE(m.has_value());
  // One hostile flow pumps megabytes through the scanner; ten siblings send
  // one small matching packet each, interleaved. With a per-flow CPU budget
  // the hostile flow must be quarantined and the siblings must all match.
  // The bulk payload embeds the literal so the SIMD prefilter cannot skip
  // it — literal-free floods now cost next to nothing (DESIGN.md §13), so
  // the adversarial case for the budget is prefilter-resistant traffic.
  trace::Trace t("quarantine");
  const flow::FlowKey hostile{0xbad, 0xbad, 666, 666, 6};
  std::string bulk(8192, 'x');
  for (std::size_t p = 256; p + 8 < bulk.size(); p += 512)
    bulk.replace(p, 8, "needle77");
  std::uint64_t hoff = 0;
  int sibling = 0;
  for (int i = 0; i < 500; ++i) {
    t.add_packet(hostile, hoff, bulk);
    hoff += bulk.size();
    if (i % 50 == 25 && sibling < 10) {
      const flow::FlowKey key{10u + static_cast<std::uint32_t>(sibling), 20, 1000,
                              80, 6};
      t.add_packet(key, 0, "hello needle77 goodbye");
      ++sibling;
    }
  }
  ASSERT_EQ(sibling, 10);

  Options opt;
  opt.shards = 1;
  opt.collect_flow_matches = true;
  opt.flow_cpu_budget_ns = 1000000;  // 1 ms of scan CPU per flow
  ShardedInspector<core::Mfa> pipe(*m, opt);
  const auto t0 = std::chrono::steady_clock::now();
  pipe.start();
  t.for_each_packet([&](const flow::Packet& p) { pipe.submit(p); });
  pipe.finish();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  const ShardStats total = pipe.totals();
  EXPECT_GE(total.flows_quarantined, 1u) << "hostile flow evaded its budget";
  EXPECT_GT(total.shed_quarantine, 0u);
  check_invariant(total, "totals");
  std::size_t sibling_matches = 0;
  for (const FlowMatch& fm : pipe.flow_matches())
    if (!(fm.key == hostile)) ++sibling_matches;
  EXPECT_EQ(sibling_matches, 10u) << "sibling flows must be unaffected";
  std::printf("quarantine: %llu flows quarantined, %llu packets shed, "
              "%.1f MB scanned in %.3f s (%.0f MB/s)\n",
              (unsigned long long)total.flows_quarantined,
              (unsigned long long)total.shed_quarantine,
              static_cast<double>(total.bytes) / 1e6, secs,
              static_cast<double>(total.bytes) / 1e6 / (secs > 0 ? secs : 1));
}

TEST_F(SoakTest, FinishWithDeadlineReturnsTrueOnCleanRuns) {
  const auto m = core::build_mfa(compile_patterns(kPatterns));
  ASSERT_TRUE(m.has_value());
  const trace::Trace t = make_soak_trace(41);
  Options opt;
  opt.shards = 2;
  opt.collect_matches = true;
  ShardedInspector<core::Mfa> pipe(*m, opt);
  pipe.start();
  t.for_each_packet([&](const flow::Packet& p) { pipe.submit(p); });
  EXPECT_TRUE(pipe.finish(std::chrono::milliseconds(30000)));
  const ShardStats total = pipe.totals();
  EXPECT_EQ(total.scanned, t.packet_count());
  EXPECT_EQ(total.shed_total(), 0u);
  check_invariant(total, "totals");
}

TEST_F(SoakTest, FinishWithDeadlineNeverHangsOnStalledWorkers) {
  if (!util::faultpoints_enabled())
    GTEST_SKIP() << "fault points compiled out (Release build)";
  const auto m = core::build_mfa(compile_patterns(kPatterns));
  ASSERT_TRUE(m.has_value());
  // Both workers stall for 30 s on their first loop iteration; a 100 ms
  // deadline must still come back in well under a second per window.
  util::FaultRegistry::instance().arm(
      "pipeline.worker.stall",
      {3, 1000000, 0, /*max_fires=*/2, /*param=*/30000});
  Options opt;
  opt.shards = 2;
  opt.queue_capacity = 64;
  ShardedInspector<core::Mfa> pipe(*m, opt);
  pipe.start();
  const std::string payload = "some bytes to leave in the queues";
  for (std::uint32_t i = 0; i < 32; ++i) {
    const flow::FlowKey key{i, 1, 2, 3, 6};
    pipe.submit(flow::Packet{key, 0,
                             reinterpret_cast<const std::uint8_t*>(payload.data()),
                             static_cast<std::uint32_t>(payload.size())});
  }
  const auto t0 = std::chrono::steady_clock::now();
  const bool clean = pipe.finish(std::chrono::milliseconds(100));
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::seconds(10)) << "finish(timeout) hung";
  EXPECT_FALSE(clean) << "a stalled shutdown must report itself";
  const ShardStats total = pipe.totals();
  EXPECT_EQ(total.submitted, 32u);
  check_invariant(total, "totals");
}

TEST_F(SoakTest, WatchdogFlagsStalledWorker) {
  if (!util::faultpoints_enabled())
    GTEST_SKIP() << "fault points compiled out (Release build)";
  const auto m = core::build_mfa(compile_patterns(kPatterns));
  ASSERT_TRUE(m.has_value());
  util::FaultRegistry::instance().arm(
      "pipeline.worker.stall", {4, 1000000, 0, /*max_fires=*/1, /*param=*/300});
  Options opt;
  opt.shards = 1;
  opt.watchdog = true;
  opt.watchdog_interval_ms = 1;
  opt.stall_timeout_ms = 30;
  ShardedInspector<core::Mfa> pipe(*m, opt);
  pipe.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  pipe.finish();
  EXPECT_GE(pipe.totals().worker_stalls, 1u);
}

// Tiered-inspector soak under allocation faults: the hot-table growth path
// ("flow.table.alloc") and the reassembly buffering path
// ("flow.reassembly.alloc") both throw std::bad_alloc at a randomized rate
// while realistic traffic streams through a bare TieredFlowInspector. The
// contracts mirror the pipeline soak, at the inspector layer:
//  1. Exact accounting — every packet either scans or surfaces as exactly
//     one caught bad_alloc (scanned + dropped == total), and the inspector
//     object stays usable after every throw.
//  2. Parity on undisturbed flows — flows that never had a packet dropped
//     produce byte-identical matches to the sequential reference.
TEST_F(SoakTest, TieredInspectorSurvivesAllocFaultsWithExactAccounting) {
  if (!util::faultpoints_enabled())
    GTEST_SKIP() << "fault points compiled out (Release build)";
  const auto m = core::build_mfa(compile_patterns(kPatterns));
  ASSERT_TRUE(m.has_value());
  const trace::Trace t = make_soak_trace(29);
  const PerFlowMatches reference = per_flow_reference(*m, t);
  ASSERT_FALSE(reference.empty());
  // The table site is only reached on new-flow creation, so fire
  // deterministically on a run of creations mid-trace; the reassembly site
  // adds chaos whenever the trace actually buffers out-of-order bytes.
  util::FaultRegistry::instance().arm(
      "flow.table.alloc", {19, 1000000, /*after=*/50, /*max_fires=*/8, 0});
  util::FaultRegistry::instance().arm(
      "flow.reassembly.alloc", {23, 1000000, /*after=*/20, /*max_fires=*/8, 0});

  flow::TieredFlowInspector<core::Mfa> insp{*m};
  PerFlowMatches got;
  std::unordered_set<flow::FlowKey, flow::FlowKeyHash> disturbed;
  std::uint64_t scanned = 0, dropped = 0, total = 0;
  t.for_each_packet([&](const flow::Packet& p) {
    ++total;
    try {
      insp.packet(p, [&](std::uint32_t id, std::uint64_t end) {
        got[p.key].push_back(Match{id, end});
      });
      ++scanned;
    } catch (const std::bad_alloc&) {
      // The inspector guarantees the throw happens before any state for the
      // packet is committed: the flow just misses these bytes.
      ++dropped;
      disturbed.insert(p.key);
    }
  });
  EXPECT_EQ(scanned + dropped, total) << "alloc-fault accounting leaked";
  EXPECT_GT(dropped, 0u) << "fault schedule never fired — not a useful run";

  // A dropped packet leaves a hole in that flow's byte stream, so later
  // in-order bytes legitimately park in reassembly; only flows with no
  // drops owe the reference an exact answer.
  for (auto& [key, v] : got) std::sort(v.begin(), v.end());
  std::size_t compared = 0;
  for (const auto& [key, expected] : reference) {
    if (disturbed.count(key) != 0) continue;
    const auto it = got.find(key);
    ASSERT_NE(it, got.end()) << "undisturbed flow lost its matches";
    EXPECT_EQ(it->second, expected);
    ++compared;
  }
  EXPECT_GT(compared, 0u) << "every flow disturbed — rates too hot to compare";

  // The inspector must still be fully alive once the faults disarm.
  util::FaultRegistry::instance().disarm_all();
  const std::string payload = "post-fault worm77 traffic";
  std::size_t post_matches = 0;
  insp.packet(flow::Packet{flow::FlowKey{9999, 1, 2, 3, 6}, 0,
                           reinterpret_cast<const std::uint8_t*>(payload.data()),
                           static_cast<std::uint32_t>(payload.size())},
              [&](std::uint32_t, std::uint64_t) { ++post_matches; });
  EXPECT_EQ(post_matches, 1u) << "inspector wedged after alloc faults";
  std::printf("tiered alloc soak: %llu scanned, %llu dropped, %zu flows "
              "disturbed, %zu/%zu compared clean\n",
              (unsigned long long)scanned, (unsigned long long)dropped,
              disturbed.size(), compared, reference.size());
}

// CI chaos-matrix leg: the seed and fault intensity come from the
// environment (MFA_SOAK_SEED, MFA_SOAK_FAULT_PPM) so one binary fans out
// across a randomized multi-seed matrix. Every recovery path is armed at
// once — a crash, stalls, corruption, queue pressure, alloc failures, and
// a synthetic overload spike that drives the degradation ladder — and the
// run gates only the two contracts that must hold under ANY schedule:
// exact accounting and a bounded finish(timeout). MFA_SOAK_TELEMETRY
// names a file that receives the run's mfa.telemetry.v1 snapshot so the
// workflow can artifact one per seed.
TEST_F(SoakTest, ChaosMatrixLegFromEnvironment) {
  if (!util::faultpoints_enabled())
    GTEST_SKIP() << "fault points compiled out (Release build)";
  std::uint64_t seed = 1;
  if (const char* e = std::getenv("MFA_SOAK_SEED"))
    seed = std::strtoull(e, nullptr, 10);
  std::uint32_t ppm = 120000;
  if (const char* e = std::getenv("MFA_SOAK_FAULT_PPM"))
    ppm = static_cast<std::uint32_t>(std::strtoul(e, nullptr, 10));
  // Above ~40% per-packet chaos nothing flows and the run proves nothing.
  ppm = std::min(ppm, 400000u);

  const auto m = core::build_mfa(compile_patterns(kPatterns));
  ASSERT_TRUE(m.has_value());
  const trace::Trace t = make_soak_trace(seed * 7919 + 101);

  auto& reg = util::FaultRegistry::instance();
  reg.arm("pipeline.worker.crash",
          {seed, 1000000, /*after=*/25, /*max_fires=*/1, 0});
  reg.arm("pipeline.packet.corrupt", {seed + 1, ppm / 8, 0, ~std::uint64_t{0}, 0});
  reg.arm("pipeline.queue.full", {seed + 2, ppm / 4, 0, ~std::uint64_t{0}, 0});
  reg.arm("pipeline.worker.stall",
          {seed + 3, ppm / 8, 0, /*max_fires=*/6, /*param=*/2});
  reg.arm("flow.table.alloc",
          {seed + 4, 1000000, /*after=*/300, /*max_fires=*/2, 0});
  reg.arm("flow.reassembly.alloc",
          {seed + 5, ppm / 8, 0, /*max_fires=*/4, 0});
  reg.arm("pipeline.overload.spike",
          {seed + 6, ppm, 0, ~std::uint64_t{0}, /*param=*/300});

  obs::MetricsRegistry metrics(3);
  std::atomic<std::uint64_t> sink_calls{0};
  Options opt;
  opt.shards = 3;
  opt.queue_capacity = 256;
  opt.batch_size = 16;
  opt.metrics = &metrics;
  opt.watchdog = true;
  opt.watchdog_interval_ms = 1;
  opt.stall_timeout_ms = 10;
  opt.max_worker_restarts = 3;
  opt.shed_policy = ShedPolicy::kDropNewest;
  opt.shed_sink = [&](const flow::Packet&, ShedReason) {
    sink_calls.fetch_add(1, std::memory_order_relaxed);
  };
  // Degradation live: the spike faultpoint forces controller pressure, so
  // the ladder gets walked regardless of how fast this runner really is.
  opt.slo.p99_ns = 5'000'000;
  opt.slo.max_shed_ratio = 0.05;
  opt.degrade.dwell_ms = 5;

  ShardedInspector<core::Mfa> pipe(*m, opt);
  pipe.start();
  t.for_each_packet([&](const flow::Packet& p) { pipe.submit(p); });
  const auto t0 = std::chrono::steady_clock::now();
  const bool clean = pipe.finish(std::chrono::milliseconds(60000));
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_TRUE(clean) << "finish(timeout) hit its deadline — a worker wedged";
  EXPECT_LT(elapsed, std::chrono::seconds(60)) << "finish(timeout) hung";

  const ShardStats total = pipe.totals();
  EXPECT_EQ(total.submitted, t.packet_count()) << "seed " << seed;
  check_invariant(total, "totals");
  for (std::size_t i = 0; i < pipe.stats().size(); ++i)
    check_invariant(pipe.stats()[i], "shard");
  EXPECT_GT(total.scanned, 0u) << "chaos drowned all traffic; rates too hot";

  if (const char* path = std::getenv("MFA_SOAK_TELEMETRY")) {
    std::ofstream out(path);
    out << obs::to_json(metrics.snapshot()) << '\n';
    out.flush();
    ASSERT_TRUE(out.good()) << "failed to write telemetry artifact " << path;
  }
  std::printf(
      "chaos matrix leg: seed=%llu ppm=%u scanned=%llu shed=%llu "
      "restarts=%llu recovered=%llu degrade_transitions=%llu sink=%llu\n",
      (unsigned long long)seed, ppm, (unsigned long long)total.scanned,
      (unsigned long long)total.shed_total(),
      (unsigned long long)total.worker_restarts,
      (unsigned long long)total.flows_recovered,
      (unsigned long long)total.degrade_transitions,
      (unsigned long long)sink_calls.load());
}

}  // namespace
}  // namespace mfa::pipeline
