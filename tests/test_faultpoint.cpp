// Deterministic fault-injection registry: schedules replay per seed, rates
// calibrate, gates (after/max_fires) hold, and the whole machinery is a
// constant-false no-op when compiled out.
#include "util/faultpoint.h"

#include <gtest/gtest.h>

#include <chrono>
#include <new>
#include <vector>

namespace mfa::util {
namespace {

class FaultPointTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultRegistry::instance().disarm_all(); }
  void TearDown() override { FaultRegistry::instance().disarm_all(); }
};

TEST_F(FaultPointTest, UnarmedSiteNeverFiresAndCostsNoEvals) {
  EXPECT_FALSE(fault_fire("test.unarmed"));
  EXPECT_FALSE(FaultRegistry::instance().any_armed());
  EXPECT_EQ(FaultRegistry::instance().eval_count("test.unarmed"), 0u);
}

TEST_F(FaultPointTest, DisabledBuildIsConstantFalse) {
  if (faultpoints_enabled()) GTEST_SKIP() << "fault points are compiled in";
  FaultConfig always;
  always.rate_ppm = 1000000;
  FaultRegistry::instance().arm("test.always", always);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(fault_fire("test.always"));
  EXPECT_NO_THROW(fault_maybe_bad_alloc("test.always"));
  fault_stall("test.always");  // returns immediately
}

TEST_F(FaultPointTest, SameSeedReplaysTheSameSchedule) {
  if (!faultpoints_enabled()) GTEST_SKIP() << "fault points compiled out";
  FaultConfig cfg;
  cfg.seed = 42;
  cfg.rate_ppm = 250000;  // ~25%
  auto run = [&] {
    FaultRegistry::instance().arm("test.replay", cfg);
    std::vector<bool> fired;
    for (int i = 0; i < 500; ++i) fired.push_back(fault_fire("test.replay"));
    return fired;
  };
  const auto a = run();
  const auto b = run();  // re-arm resets the evaluation sequence
  EXPECT_EQ(a, b);
  cfg.seed = 43;
  const auto c = run();
  EXPECT_NE(a, c) << "different seed must give a different schedule";
}

TEST_F(FaultPointTest, RateRoughlyCalibrated) {
  if (!faultpoints_enabled()) GTEST_SKIP() << "fault points compiled out";
  FaultConfig cfg;
  cfg.seed = 7;
  cfg.rate_ppm = 100000;  // 10%
  FaultRegistry::instance().arm("test.rate", cfg);
  int fires = 0;
  for (int i = 0; i < 10000; ++i) fires += fault_fire("test.rate") ? 1 : 0;
  EXPECT_GT(fires, 700);
  EXPECT_LT(fires, 1300);
  EXPECT_EQ(FaultRegistry::instance().fire_count("test.rate"),
            static_cast<std::uint64_t>(fires));
  EXPECT_EQ(FaultRegistry::instance().eval_count("test.rate"), 10000u);
}

TEST_F(FaultPointTest, AfterAndMaxFiresGateTheSchedule) {
  if (!faultpoints_enabled()) GTEST_SKIP() << "fault points compiled out";
  FaultConfig cfg;
  cfg.rate_ppm = 1000000;  // would otherwise fire every evaluation
  cfg.after = 10;
  cfg.max_fires = 3;
  FaultRegistry::instance().arm("test.gates", cfg);
  int fires = 0;
  for (int i = 0; i < 100; ++i) {
    const bool f = fault_fire("test.gates");
    if (i < 10) {
      EXPECT_FALSE(f) << "must not fire during the 'after' window";
    }
    fires += f ? 1 : 0;
  }
  EXPECT_EQ(fires, 3);
}

TEST_F(FaultPointTest, BadAllocHelperThrows) {
  if (!faultpoints_enabled()) GTEST_SKIP() << "fault points compiled out";
  FaultConfig cfg;
  cfg.rate_ppm = 1000000;
  FaultRegistry::instance().arm("test.alloc", cfg);
  EXPECT_THROW(fault_maybe_bad_alloc("test.alloc"), std::bad_alloc);
}

TEST_F(FaultPointTest, StallRespectsAbort) {
  if (!faultpoints_enabled()) GTEST_SKIP() << "fault points compiled out";
  FaultConfig cfg;
  cfg.rate_ppm = 1000000;
  cfg.param = 10000;  // 10 s stall — must NOT be served in full
  FaultRegistry::instance().arm("test.stall", cfg);
  FaultRegistry::instance().abort_stalls();
  const auto t0 = std::chrono::steady_clock::now();
  fault_stall("test.stall");
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::seconds(2));
}

}  // namespace
}  // namespace mfa::util
