// Compiled-automaton persistence: save/load round trips, corruption
// rejection, and scan-equivalence of reloaded automata.
#include <gtest/gtest.h>

#include <cstdio>

#include "engine_test_util.h"
#include "mfa/mfa.h"
#include "rules/rules.h"
#include "rules/ruleset_gen.h"
#include "util/binio.h"

namespace mfa::core {
namespace {

using mfa::testing::compile_patterns;
using mfa::testing::sorted;

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

const std::vector<std::string> kPats = {".*atk1.*vec2", ".*hd3[^\\n]*vl4",
                                        ".*gp5.{3,}gp6", "^anch7.*tail8", ".*solo9"};

TEST(Serialize, RoundTripPreservesEverything) {
  auto built = build_mfa(compile_patterns(kPats));
  ASSERT_TRUE(built.has_value());
  const std::string path = temp_path("roundtrip.mfac");
  ASSERT_TRUE(built->save(path));

  auto loaded = Mfa::load(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->character_dfa().state_count(), built->character_dfa().state_count());
  EXPECT_EQ(loaded->character_dfa().start(), built->character_dfa().start());
  EXPECT_EQ(loaded->program().memory_bits, built->program().memory_bits);
  EXPECT_EQ(loaded->program().counters, built->program().counters);
  EXPECT_EQ(loaded->program().position_slots, built->program().position_slots);
  EXPECT_EQ(loaded->program().actions.size(), built->program().actions.size());
  for (std::size_t i = 0; i < built->program().actions.size(); ++i)
    EXPECT_EQ(loaded->program().actions[i], built->program().actions[i]) << i;
  ASSERT_EQ(loaded->pieces().size(), built->pieces().size());
  for (std::size_t i = 0; i < built->pieces().size(); ++i)
    EXPECT_EQ(loaded->pieces()[i].regex.source, built->pieces()[i].regex.source);
  EXPECT_EQ(loaded->memory_image_bytes(), built->memory_image_bytes());
  std::remove(path.c_str());
}

TEST(Serialize, LoadedAutomatonScansIdentically) {
  auto built = build_mfa(compile_patterns(kPats));
  ASSERT_TRUE(built.has_value());
  const std::string path = temp_path("scan.mfac");
  ASSERT_TRUE(built->save(path));
  auto loaded = Mfa::load(path);
  ASSERT_TRUE(loaded.has_value());
  for (const std::string input :
       {"atk1 then vec2", "hd3 vl4", "hd3\nvl4", "gp5...gp6", "gp5gp6",
        "anch7 tail8", "x anch7 tail8", "solo9 solo9", "nothing"}) {
    MfaScanner a(*built);
    MfaScanner b(*loaded);
    EXPECT_EQ(sorted(a.scan(input)), sorted(b.scan(input))) << input;
  }
  std::remove(path.c_str());
}

TEST(Serialize, RejectsMissingFile) {
  EXPECT_FALSE(Mfa::load(temp_path("does_not_exist.mfac")).has_value());
}

TEST(Serialize, RejectsWrongMagic) {
  const std::string path = temp_path("wrong_magic.mfac");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("MFTRgarbage-that-is-not-an-automaton", f);
  std::fclose(f);
  EXPECT_FALSE(Mfa::load(path).has_value());
  std::remove(path.c_str());
}

TEST(Serialize, RejectsTruncation) {
  auto built = build_mfa(compile_patterns(kPats));
  ASSERT_TRUE(built.has_value());
  const std::string path = temp_path("trunc.mfac");
  ASSERT_TRUE(built->save(path));
  // Truncate at several byte positions; every prefix must be rejected,
  // never crash.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<char> bytes(static_cast<std::size_t>(size));
  ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  for (const double frac : {0.1, 0.3, 0.5, 0.8, 0.95, 0.999}) {
    const std::string tpath = temp_path("trunc_cut.mfac");
    std::FILE* out = std::fopen(tpath.c_str(), "wb");
    ASSERT_NE(out, nullptr);
    const auto cut = static_cast<std::size_t>(static_cast<double>(size) * frac);
    std::fwrite(bytes.data(), 1, cut, out);
    std::fclose(out);
    EXPECT_FALSE(Mfa::load(tpath).has_value()) << "fraction " << frac;
    std::remove(tpath.c_str());
  }
  std::remove(path.c_str());
}

TEST(Serialize, RejectsBitFlipsInHeaderRegion) {
  // Flipping bytes in the structural header must not produce a loadable
  // automaton with out-of-range tables (either a clean failure or a load
  // whose invariants still hold is acceptable; crashes are not).
  auto built = build_mfa(compile_patterns({".*abc.*xyz"}));
  ASSERT_TRUE(built.has_value());
  const std::string path = temp_path("flip.mfac");
  ASSERT_TRUE(built->save(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<char> bytes(static_cast<std::size_t>(size));
  ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  for (std::size_t pos = 8; pos < std::min<std::size_t>(bytes.size(), 64); ++pos) {
    std::vector<char> mutated = bytes;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x5a);
    const std::string mpath = temp_path("flip_mut.mfac");
    std::FILE* out = std::fopen(mpath.c_str(), "wb");
    std::fwrite(mutated.data(), 1, mutated.size(), out);
    std::fclose(out);
    auto loaded = Mfa::load(mpath);
    if (loaded) {
      // If it loaded, its tables must still be internally consistent
      // enough to scan without faulting.
      MfaScanner s(*loaded);
      s.scan(std::string("abc xyz abc"));
    }
    std::remove(mpath.c_str());
  }
  std::remove(path.c_str());
}

TEST(BinIo, PodVecCraftedHugeCountFailsCleanly) {
  // Regression: a 16-byte crafted header whose count makes `count *
  // sizeof(T)` wrap to ~0 (2^61 * 8 == 2^64) used to slip past the
  // pre-allocation size check and drive std::vector into length_error /
  // OOM. The divide-based guard must reject it before allocating.
  const std::string path = temp_path("huge_count.bin");
  {
    util::FilePtr f(std::fopen(path.c_str(), "wb"));
    util::BinWriter w(f.get());
    w.u64(0x2000000000000000ull);  // * sizeof(u64) wraps to exactly 0
    w.u64(0xdeadbeefull);          // "payload" the wrap would have trusted
    ASSERT_TRUE(w.ok());
  }
  {
    util::FilePtr f(std::fopen(path.c_str(), "rb"));
    util::BinReader r(f.get());
    const std::vector<std::uint64_t> v = r.pod_vec<std::uint64_t>();
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(v.empty());
  }
  {
    // Same wrap through a narrower element type (2^62 * 4 == 2^64).
    util::FilePtr f(std::fopen(path.c_str(), "rb"));
    util::BinReader r(f.get());
    r.u32();  // misalign so the count reads as a different huge value
    const std::vector<std::uint32_t> v = r.pod_vec<std::uint32_t>();
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(v.empty());
  }
  std::remove(path.c_str());
}

TEST(Serialize, SaveIsAtomicAndLeavesNoTempFile) {
  auto built = build_mfa(compile_patterns({".*ab.*cd"}));
  ASSERT_TRUE(built.has_value());
  const std::string path = temp_path("atomic.mfac");

  // Plant garbage at the destination: a failed save must not clobber it,
  // a successful save must replace it wholesale.
  std::FILE* g = std::fopen(path.c_str(), "wb");
  ASSERT_NE(g, nullptr);
  std::fputs("stale garbage, not an automaton", g);
  std::fclose(g);

  ASSERT_TRUE(built->save(path));
  EXPECT_TRUE(Mfa::load(path).has_value());

  // The staging file must be gone after a successful rename.
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) std::fclose(tmp);

  // A save into a nonexistent directory fails cleanly and leaves the
  // previously published artifact untouched.
  EXPECT_FALSE(built->save(::testing::TempDir() + "/no_such_dir/x.mfac"));
  EXPECT_TRUE(Mfa::load(path).has_value());
  std::remove(path.c_str());
}

TEST(Serialize, PersistsParseOptionsAcrossRoundTrip) {
  // A pattern nested beyond the default max_nesting_depth only parses with
  // relaxed options; load() re-parses the stored piece sources, so the
  // format must carry the options or reload fails at exactly this
  // boundary.
  std::string deep = ".*";
  for (int i = 0; i < 150; ++i) deep += '(';
  deep += "needle";
  for (int i = 0; i < 150; ++i) deep += ')';

  ASSERT_FALSE(regex::parse(deep).ok());  // default cap (100) rejects it

  regex::ParseOptions popt;
  popt.max_nesting_depth = 200;
  popt.max_counted_repeat = 512;  // non-default, must round-trip too
  regex::ParseResult parsed = regex::parse(deep, popt);
  ASSERT_TRUE(parsed.ok());

  BuildOptions bopt;
  bopt.parse = popt;
  auto built = build_mfa({nfa::PatternInput{*parsed.regex, 7}}, bopt);
  ASSERT_TRUE(built.has_value());

  const std::string path = temp_path("options.mfac");
  ASSERT_TRUE(built->save(path));
  auto loaded = Mfa::load(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->parse_options().icase, popt.icase);
  EXPECT_EQ(loaded->parse_options().dotall, popt.dotall);
  EXPECT_EQ(loaded->parse_options().max_counted_repeat, popt.max_counted_repeat);
  EXPECT_EQ(loaded->parse_options().max_nesting_depth, popt.max_nesting_depth);

  MfaScanner a(*built);
  MfaScanner b(*loaded);
  for (const std::string input : {"xx needle yy", "need le", "needleneedle"})
    EXPECT_EQ(sorted(a.scan(input)), sorted(b.scan(input))) << input;
  std::remove(path.c_str());
}

TEST(Serialize, StompCorpusEveryMutationLoadsAsNullopt) {
  // The v2 format ends with an FNV-1a digest of the whole payload plus an
  // EOF check, so ANY single-byte corruption, truncation, or trailing
  // garbage must come back std::nullopt — never a half-valid automaton,
  // never a crash (the ASan job runs this file).
  auto built = build_mfa(compile_patterns({".*ab.*cd", "^ef.{2,5}gh"}));
  ASSERT_TRUE(built.has_value());
  const std::string path = temp_path("stomp.mfac");
  ASSERT_TRUE(built->save(path));

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<char> bytes(static_cast<std::size_t>(size));
  ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  std::remove(path.c_str());

  const std::string mpath = temp_path("stomp_mut.mfac");
  const auto write_mutant = [&](const char* data, std::size_t n) {
    std::FILE* out = std::fopen(mpath.c_str(), "wb");
    ASSERT_NE(out, nullptr);
    if (n > 0) ASSERT_EQ(std::fwrite(data, 1, n, out), n);
    std::fclose(out);
  };

  // Every truncation prefix.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    write_mutant(bytes.data(), cut);
    EXPECT_FALSE(Mfa::load(mpath).has_value()) << "truncated at " << cut;
  }
  // Every single-byte stomp.
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    std::vector<char> mutated = bytes;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x5a);
    write_mutant(mutated.data(), mutated.size());
    EXPECT_FALSE(Mfa::load(mpath).has_value()) << "stomped byte " << pos;
  }
  // Trailing garbage after a byte-perfect payload.
  {
    std::vector<char> padded = bytes;
    padded.push_back('\x00');
    write_mutant(padded.data(), padded.size());
    EXPECT_FALSE(Mfa::load(mpath).has_value()) << "trailing garbage";
  }
  std::remove(mpath.c_str());
}

std::vector<char> read_file_bytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  if (f == nullptr) return {};
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<char> bytes(static_cast<std::size_t>(size));
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  return bytes;
}

TEST(Serialize, ArtifactIsByteIdenticalAcrossCompileThreads) {
  // Parallel subset construction must be a pure speedup: the deterministic
  // state numbering means a 1-thread and an N-thread compile of the same
  // ruleset serialize to byte-identical MFAC artifacts (deployments diff
  // artifacts to decide whether sensors need a push).
  const auto loaded = rules::parse_rules(rules::generate_ruleset({100, 42}));
  ASSERT_TRUE(loaded.ok());
  const auto inputs = rules::to_pattern_inputs(loaded.rules);

  BuildOptions seq;
  seq.dfa.threads = 1;
  auto mfa_seq = build_mfa(inputs, seq);
  ASSERT_TRUE(mfa_seq.has_value());
  BuildOptions par;
  par.dfa.threads = 4;
  auto mfa_par = build_mfa(inputs, par);
  ASSERT_TRUE(mfa_par.has_value());

  const std::string path_seq = temp_path("threads1.mfac");
  const std::string path_par = temp_path("threads4.mfac");
  ASSERT_TRUE(mfa_seq->save(path_seq));
  ASSERT_TRUE(mfa_par->save(path_par));
  EXPECT_EQ(read_file_bytes(path_seq), read_file_bytes(path_par));

  // Delta-mode artifacts inherit the same determinism: the D2fa is built
  // from the (identical) dense table by a sequential pass.
  BuildOptions del = par;
  del.delta = true;
  auto mfa_del_par = build_mfa(inputs, del);
  del.dfa.threads = 1;
  auto mfa_del_seq = build_mfa(inputs, del);
  ASSERT_TRUE(mfa_del_seq.has_value());
  ASSERT_TRUE(mfa_del_par.has_value());
  ASSERT_TRUE(mfa_del_seq->save(path_seq));
  ASSERT_TRUE(mfa_del_par->save(path_par));
  EXPECT_EQ(read_file_bytes(path_seq), read_file_bytes(path_par));

  std::remove(path_seq.c_str());
  std::remove(path_par.c_str());
}

TEST(Serialize, DeltaArtifactRoundTripScansIdentically) {
  // v3 (delta-table) artifacts: the loaded automaton must stay in delta
  // mode (no dense table resurrected), report the same compressed footprint,
  // and scan byte-identically — including through the prefilter gate, which
  // load() re-proves against a transiently expanded table.
  BuildOptions del;
  del.delta = true;
  auto built = build_mfa(compile_patterns(kPats), del);
  ASSERT_TRUE(built.has_value());
  ASSERT_TRUE(built->delta_mode());
  const std::string path = temp_path("delta_roundtrip.mfac");
  ASSERT_TRUE(built->save(path));

  auto loaded = Mfa::load(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->delta_mode());
  EXPECT_EQ(loaded->memory_image_bytes(), built->memory_image_bytes());

  auto dense = build_mfa(compile_patterns(kPats));
  ASSERT_TRUE(dense.has_value());
  for (const std::string input :
       {"atk1 then vec2", "hd3 vl4", "hd3\nvl4", "gp5...gp6", "gp5gp6",
        "anch7 tail8", "x anch7 tail8", "solo9 solo9", "nothing"}) {
    MfaScanner a(*dense);
    MfaScanner b(*loaded);
    EXPECT_EQ(sorted(a.scan(input)), sorted(b.scan(input))) << input;
  }
  std::remove(path.c_str());
}

TEST(Serialize, DeltaStompCorpusEveryMutationLoadsAsNullopt) {
  // The v3 layout adds the table-kind byte and the whole D2fa section ahead
  // of the digest; the corruption guarantee must hold there too (truncation
  // inside the exception stream, stomped defaults, flipped kind byte, ...).
  BuildOptions del;
  del.delta = true;
  auto built = build_mfa(compile_patterns({".*ab.*cd", "^ef.{2,5}gh"}), del);
  ASSERT_TRUE(built.has_value());
  ASSERT_TRUE(built->delta_mode());
  const std::string path = temp_path("delta_stomp.mfac");
  ASSERT_TRUE(built->save(path));
  const std::vector<char> bytes = read_file_bytes(path);
  std::remove(path.c_str());

  const std::string mpath = temp_path("delta_stomp_mut.mfac");
  const auto write_mutant = [&](const char* data, std::size_t n) {
    std::FILE* out = std::fopen(mpath.c_str(), "wb");
    ASSERT_NE(out, nullptr);
    if (n > 0) ASSERT_EQ(std::fwrite(data, 1, n, out), n);
    std::fclose(out);
  };
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    write_mutant(bytes.data(), cut);
    EXPECT_FALSE(Mfa::load(mpath).has_value()) << "truncated at " << cut;
  }
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    std::vector<char> mutated = bytes;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x5a);
    write_mutant(mutated.data(), mutated.size());
    EXPECT_FALSE(Mfa::load(mpath).has_value()) << "stomped byte " << pos;
  }
  std::remove(mpath.c_str());
}

TEST(Serialize, DfaValidationCatchesBadTargets) {
  // Hand-craft a DFA blob with an out-of-range transition target.
  const std::string path = temp_path("bad_dfa.bin");
  {
    util::FilePtr f(std::fopen(path.c_str(), "wb"));
    util::BinWriter w(f.get());
    w.u32(2);   // state_count
    w.u32(0);   // start
    w.u32(1);   // accept_states
    w.u32(1);   // max_match_id
    w.u16(1);   // ncols
    std::vector<std::uint8_t> cols(256, 0);
    w.bytes(cols.data(), cols.size());
    w.pod_vec(std::vector<std::uint32_t>{1, 99});  // target 99 out of range
    w.pod_vec(std::vector<std::uint32_t>{0, 1});   // accept offsets
    w.pod_vec(std::vector<std::uint32_t>{1});      // accept ids
  }
  util::FilePtr f(std::fopen(path.c_str(), "rb"));
  util::BinReader r(f.get());
  dfa::Dfa out;
  EXPECT_FALSE(dfa::Dfa::deserialize(r, out));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mfa::core
