// SIMD prefilter + vectorized kernel coverage (DESIGN.md §13).
//
// Four layers, each validated against a scalar or linear-scan reference:
//   - split::required_literal_factors: the or-list heuristic must only ever
//     produce *required* factors (every match contains one);
//   - simd::Teddy: no false negatives, exact ASCII case folding;
//   - simd::Prefilter / Mfa::feed_gated: the skip gate is byte-identical to
//     the plain scan (states, match ids, offsets) and disarms itself on
//     unprefilterable sets;
//   - flow-layer gating: gated FlowInspector / TieredFlowInspector output
//     (ids, offsets, generations) is identical to ungated delivery across
//     fragmentation, reorder, retransmission, batching, and icase corpora —
//     and the skip counters prove the gate actually fired.
//
// The whole file is kernel-agnostic: under MFA_SIMD=scalar it validates the
// fallback path, under AVX2 the vector path — CI runs both legs.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "dfa/dfa.h"
#include "engine_test_util.h"
#include "flow/flow.h"
#include "flow/tiered.h"
#include "mfa/mfa.h"
#include "nfa/nfa.h"
#include "regex/parser.h"
#include "simd/dispatch.h"
#include "simd/prefilter.h"
#include "simd/teddy.h"
#include "split/literals.h"
#include "util/rng.h"

namespace mfa {
namespace {

using mfa::testing::compile_patterns;
using mfa::testing::sorted;

// --- literal extraction -----------------------------------------------------

/// The contract under test: at least one extracted factor occurs in `s`
/// whenever `s` is a match of the source pattern.
bool some_factor_in(const std::vector<std::string>& factors, const std::string& s) {
  for (const auto& f : factors)
    if (s.find(f) != std::string::npos) return true;
  return false;
}

std::vector<std::string> factors_of(const std::string& pattern) {
  return split::required_literal_factors(regex::parse_or_die(pattern).root);
}

TEST(LiteralExtract, PlainLiteralAndAlternation) {
  const auto plain = factors_of("abc");
  ASSERT_FALSE(plain.empty());
  EXPECT_TRUE(some_factor_in(plain, "abc"));

  const auto alt = factors_of("(abc|defg)x");
  ASSERT_FALSE(alt.empty());
  EXPECT_TRUE(some_factor_in(alt, "abcx"));
  EXPECT_TRUE(some_factor_in(alt, "defgx"));
}

TEST(LiteralExtract, SmallClassExpands) {
  const auto f = factors_of("[ab]cd");
  ASSERT_FALSE(f.empty());
  EXPECT_TRUE(some_factor_in(f, "acd"));
  EXPECT_TRUE(some_factor_in(f, "bcd"));
}

TEST(LiteralExtract, DotStarPrefixKeepsTheRequiredTail) {
  const auto f = factors_of(".*evilpayload");
  ASSERT_FALSE(f.empty());
  EXPECT_TRUE(some_factor_in(f, std::string(100, 'x') + "evilpayload"));
}

TEST(LiteralExtract, OptionalMiddleNeverGluesAcrossTheGap) {
  // Regression: "a[bc]*d" must not yield a factor like "ad" that a match
  // with a non-empty middle ("abbbd") does not contain. Every factor the
  // heuristic emits has to occur in EVERY match.
  const auto f = factors_of("a[bc]*d");
  for (const std::string& m : {"ad", "abd", "acd", "abcbcbd"}) {
    if (!f.empty())
      EXPECT_TRUE(some_factor_in(f, m)) << "unsound factor set for match " << m;
  }
}

TEST(LiteralExtract, UnboundedClassesYieldNothing) {
  // No required factor exists: extraction must admit defeat, not guess.
  EXPECT_TRUE(factors_of(".*").empty());
  EXPECT_TRUE(factors_of("[a-z]+").empty());
}

// --- Teddy ------------------------------------------------------------------

const std::vector<std::string> kLits = {"ab12", "cd34", "wxyz", "ha7ck"};

/// Filler bytes disjoint from every literal byte (and from their case
/// variants), so filler-only haystacks carry zero Teddy candidates.
std::string filler(util::Rng& rng, std::size_t len) {
  static const char alphabet[] = "EFGJLMNOPQ";
  std::string s(len, '\0');
  for (auto& c : s) c = alphabet[rng.below(sizeof alphabet - 1)];
  return s;
}

TEST(Teddy, CompileRejectsDegenerateSets) {
  EXPECT_FALSE(simd::Teddy::compile({}, false).has_value());
  EXPECT_FALSE(simd::Teddy::compile({"ok", ""}, false).has_value());
  std::vector<std::string> many;
  for (std::size_t i = 0; i < simd::Teddy::kMaxLiterals + 1; ++i)
    many.push_back("lit" + std::to_string(i));
  EXPECT_FALSE(simd::Teddy::compile(many, false).has_value());
}

TEST(Teddy, NoFalseNegativesAtAnyPlacement) {
  const auto t = simd::Teddy::compile(kLits, false);
  ASSERT_TRUE(t.has_value());
  util::Rng rng(4242);
  for (int round = 0; round < 400; ++round) {
    const std::string& lit = kLits[rng.below(kLits.size())];
    std::string hay = filler(rng, lit.size() + rng.below(160));
    const std::size_t pos = rng.below(hay.size() - lit.size() + 1);
    hay.replace(pos, lit.size(), lit);
    EXPECT_TRUE(t->matches(reinterpret_cast<const std::uint8_t*>(hay.data()),
                           hay.size()))
        << "missed '" << lit << "' at " << pos << " in len " << hay.size();
  }
  // Exact-fit haystacks (the boundary the block kernel's tail handling owns).
  for (const std::string& lit : kLits)
    EXPECT_TRUE(t->matches(reinterpret_cast<const std::uint8_t*>(lit.data()),
                           lit.size()));
}

TEST(Teddy, CleanFillerNeverMatches) {
  // Not guaranteed by the API (false positives are allowed) but the filler
  // alphabet shares no nibble-pair with any literal byte, so a hit here
  // means the masks are broken, not that a benign FP occurred.
  const auto t = simd::Teddy::compile(kLits, false);
  ASSERT_TRUE(t.has_value());
  util::Rng rng(77);
  for (int round = 0; round < 100; ++round) {
    const std::string hay = filler(rng, rng.below(300));
    EXPECT_FALSE(t->matches(reinterpret_cast<const std::uint8_t*>(hay.data()),
                            hay.size()));
  }
}

TEST(Teddy, CaseFoldingIsExact) {
  const auto t = simd::Teddy::compile({"GotCha"}, /*icase=*/true);
  ASSERT_TRUE(t.has_value());
  util::Rng rng(99);
  for (int round = 0; round < 100; ++round) {
    std::string lit = "gotcha";
    for (auto& c : lit)
      if (rng.chance(0.5)) c = static_cast<char>(c - 32);  // random casing
    std::string hay = filler(rng, 40) + lit + filler(rng, 40);
    EXPECT_TRUE(t->matches(reinterpret_cast<const std::uint8_t*>(hay.data()),
                           hay.size()))
        << "missed case variant " << lit;
  }
}

// --- prefilter gate on the MFA ----------------------------------------------

const std::vector<std::string> kGatePatterns = {".*ab12.*cd34", ".*wxyz",
                                                ".*ha[0-9]ck"};

std::optional<core::Mfa> build_gated_mfa() {
  return core::build_mfa(compile_patterns(kGatePatterns));
}

TEST(PrefilterGate, ArmsForLiteralRichSets) {
  const auto m = build_gated_mfa();
  ASSERT_TRUE(m.has_value());
  const simd::Prefilter& p = m->prefilter();
  ASSERT_TRUE(p.enabled()) << p.status();
  ASSERT_TRUE(p.gate_enabled()) << p.status();
  EXPECT_STREQ(p.status(), "ok");
  EXPECT_GE(p.literal_count(), kGatePatterns.size());
  EXPECT_GE(p.window(), 3u);  // longest literal is >= 4 bytes

  const std::uint32_t start = m->character_dfa().start();
  EXPECT_FALSE(p.should_gate(start, simd::Prefilter::kMinGateBytes - 1));
  EXPECT_TRUE(p.should_gate(start, 256));

  // A skipped chunk must land in a state that can itself skip — that is
  // what makes the gate fire on every clean chunk of a long flow, not just
  // the first one.
  core::Mfa::Context ctx = m->make_context();
  util::Rng rng(7);
  const std::string clean = filler(rng, 256);
  ASSERT_EQ(m->prefilter_gate(ctx,
                              reinterpret_cast<const std::uint8_t*>(clean.data()),
                              clean.size()),
            simd::Gate::kSkip);
  EXPECT_TRUE(p.should_gate(ctx.state, 256));
}

TEST(PrefilterGate, DisarmsWhenAPieceHasNoLiteral) {
  // [0-9]+ has no required factor, so the whole set is unprefilterable; the
  // engine must stay correct with the gate dark.
  const auto m = core::build_mfa(compile_patterns({".*[0-9]+x", ".*wxyz"}));
  ASSERT_TRUE(m.has_value());
  EXPECT_FALSE(m->prefilter().gate_enabled());
  core::MfaScanner scan(*m);
  const std::string input = "pay 123x load wxyz";
  EXPECT_EQ(sorted(scan.scan(input)),
            sorted(testing::reference_matches({".*[0-9]+x", ".*wxyz"}, input)));
}

TEST(PrefilterGate, SkipReconstructsTheExactState) {
  const auto m = build_gated_mfa();
  ASSERT_TRUE(m.has_value());
  util::Rng rng(2026);
  const std::string clean = filler(rng, 300);

  core::Mfa::Context gated = m->make_context();
  const auto g = m->prefilter_gate(
      gated, reinterpret_cast<const std::uint8_t*>(clean.data()), clean.size());
  EXPECT_EQ(g, simd::Gate::kSkip);

  core::Mfa::Context plain = m->make_context();
  CollectingSink none;
  m->feed(plain, reinterpret_cast<const std::uint8_t*>(clean.data()),
          clean.size(), 0, none);
  EXPECT_TRUE(none.matches.empty());
  EXPECT_EQ(gated.state, plain.state);

  // Dirty chunk: the gate must demand a scan and leave the context alone.
  std::string dirty = clean;
  dirty.replace(120, 4, "wxyz");
  core::Mfa::Context probe = m->make_context();
  const std::uint32_t before = probe.state;
  EXPECT_EQ(m->prefilter_gate(probe,
                              reinterpret_cast<const std::uint8_t*>(dirty.data()),
                              dirty.size()),
            simd::Gate::kScan);
  EXPECT_EQ(probe.state, before);
}

TEST(PrefilterGate, FeedGatedIsByteIdenticalOverChunkStreams) {
  const auto m = build_gated_mfa();
  ASSERT_TRUE(m.has_value());
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    util::Rng rng(5000 + seed);
    // A stream of chunks: clean-large (skippable), dirty-large, and tiny
    // (below the gate floor), with literals sometimes torn across chunk
    // boundaries via a split in the middle of "ab12.*cd34".
    std::vector<std::string> chunks;
    for (int i = 0; i < 8; ++i) {
      switch (rng.below(4)) {
        case 0: chunks.push_back(filler(rng, 80 + rng.below(200))); break;
        case 1: {
          std::string c = filler(rng, 100);
          c.replace(rng.below(40), 4, "ab12");
          c.replace(60 + rng.below(30), 4, "cd34");
          chunks.push_back(c);
          break;
        }
        case 2:  // literal torn across the boundary
          chunks.push_back(filler(rng, 90) + "ab");
          chunks.push_back("12" + filler(rng, 90) + "cd34");
          break;
        default: chunks.push_back(filler(rng, rng.below(20))); break;
      }
    }
    core::Mfa::Context gated = m->make_context();
    core::Mfa::Context plain = m->make_context();
    CollectingSink got, want;
    std::uint64_t base = 0;
    bool skipped_any = false;
    for (const std::string& c : chunks) {
      const auto* d = reinterpret_cast<const std::uint8_t*>(c.data());
      skipped_any |= m->feed_gated(gated, d, c.size(), base, got);
      m->feed(plain, d, c.size(), base, want);
      base += c.size();
      EXPECT_EQ(gated.state, plain.state) << "seed " << seed;
    }
    EXPECT_EQ(sorted(std::move(got.matches)), sorted(std::move(want.matches)))
        << "seed " << seed;
    (void)skipped_any;  // some seeds are all-dirty; aggregate check below
  }
}

TEST(PrefilterGate, SurvivesSaveLoad) {
  const auto m = build_gated_mfa();
  ASSERT_TRUE(m.has_value());
  const std::string path = ::testing::TempDir() + "gated.mfac";
  ASSERT_TRUE(m->save(path));
  const auto loaded = core::Mfa::load(path);
  ASSERT_TRUE(loaded.has_value());
  // The prefilter is derived data: load() must rebuild it to the same arming.
  EXPECT_EQ(loaded->prefilter().gate_enabled(), m->prefilter().gate_enabled());
  EXPECT_EQ(loaded->prefilter().window(), m->prefilter().window());

  util::Rng rng(11);
  const std::string clean = filler(rng, 200);
  core::Mfa::Context ctx = loaded->make_context();
  EXPECT_EQ(loaded->prefilter_gate(
                ctx, reinterpret_cast<const std::uint8_t*>(clean.data()),
                clean.size()),
            simd::Gate::kSkip);
}

// --- dense interleaved kernel -----------------------------------------------

TEST(DenseKernel, FeedManyMatchesSequentialFeed) {
  const auto m = build_gated_mfa();
  ASSERT_TRUE(m.has_value());
  util::Rng rng(31337);
  constexpr std::size_t kJobs = 23;  // odd: exercises lane fill/retire/pad
  std::vector<std::string> payloads;
  for (std::size_t i = 0; i < kJobs; ++i) {
    std::string p = filler(rng, 16 + rng.below(220));
    if (rng.chance(0.6)) p.replace(rng.below(p.size() - 4), 4, "wxyz");
    if (rng.chance(0.3)) {
      p += "ab12";
      p += filler(rng, rng.below(40));
      p += "cd34";
    }
    payloads.push_back(std::move(p));
  }

  std::vector<core::Mfa::Context> many_ctx, seq_ctx;
  for (std::size_t i = 0; i < kJobs; ++i) {
    many_ctx.push_back(m->make_context());
    seq_ctx.push_back(m->make_context());
  }
  std::vector<core::Mfa::FeedJob> jobs;
  for (std::size_t i = 0; i < kJobs; ++i)
    jobs.push_back({&many_ctx[i],
                    reinterpret_cast<const std::uint8_t*>(payloads[i].data()),
                    payloads[i].size(), 0});

  using Hit = std::tuple<std::size_t, std::uint32_t, std::uint64_t>;
  std::vector<Hit> got, want;
  m->feed_many(jobs.data(), jobs.size(),
               [&](std::size_t job, std::uint32_t id, std::uint64_t end) {
                 got.emplace_back(job, id, end);
               },
               /*lanes=*/8);
  for (std::size_t i = 0; i < kJobs; ++i)
    m->feed(seq_ctx[i],
            reinterpret_cast<const std::uint8_t*>(payloads[i].data()),
            payloads[i].size(), 0,
            [&](std::uint32_t id, std::uint64_t end) {
              want.emplace_back(i, id, end);
            });
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want) << "kernel level " << simd::level_name();
  for (std::size_t i = 0; i < kJobs; ++i)
    EXPECT_EQ(many_ctx[i].state, seq_ctx[i].state) << "job " << i;
}

// --- flow-layer gating ------------------------------------------------------

struct Delivery {
  flow::FlowKey key;
  std::uint64_t seq = 0;
  std::string bytes;
};

/// Flow content with long clean stretches (so the gate can fire) and planted
/// literals, including ones the fragmenter will tear across segments.
std::string make_gate_content(util::Rng& rng) {
  std::string s;
  const std::size_t blocks = 3 + rng.below(4);
  for (std::size_t i = 0; i < blocks; ++i) {
    s += filler(rng, 100 + rng.below(200));
    switch (rng.below(5)) {
      case 0: s += "ab12"; break;
      case 1: s += "cd34"; break;
      case 2: s += "wxyz"; break;
      case 3: s += "ha7ck"; break;
      default: break;
    }
  }
  return s;
}

/// Segment `content` into pieces of [min_seg, max_seg] bytes; optionally
/// shuffle within a bounded window and add retransmissions.
std::vector<Delivery> plan_flow(const flow::FlowKey& key, const std::string& content,
                                std::size_t min_seg, std::size_t max_seg,
                                bool reorder, util::Rng& rng) {
  std::vector<Delivery> plan;
  std::size_t off = 0;
  while (off < content.size()) {
    const std::size_t len =
        std::min(content.size() - off, min_seg + rng.below(max_seg - min_seg + 1));
    plan.push_back({key, off, content.substr(off, len)});
    off += len;
  }
  if (reorder) {
    for (std::size_t i = 0; i + 1 < plan.size(); ++i) {
      const std::size_t j =
          i + 1 + rng.below(std::min<std::size_t>(3, plan.size() - i - 1));
      if (rng.chance(0.5)) std::swap(plan[i], plan[j]);
    }
    const std::size_t dups = rng.below(3);
    for (std::size_t i = 0; i < dups && !plan.empty(); ++i)
      plan.push_back(plan[rng.below(plan.size())]);
  }
  return plan;
}

template <typename Inspector>
MatchVec run_packets(Inspector& insp, const std::vector<Delivery>& plan) {
  CollectingSink sink;
  for (const auto& d : plan)
    insp.packet(flow::Packet{d.key, d.seq,
                             reinterpret_cast<const std::uint8_t*>(d.bytes.data()),
                             static_cast<std::uint32_t>(d.bytes.size())},
                sink);
  return sorted(std::move(sink.matches));
}

template <typename Inspector>
MatchVec run_bursts(Inspector& insp, const std::vector<Delivery>& plan,
                    std::size_t burst) {
  CollectingSink sink;
  std::vector<flow::Packet> pkts;
  for (std::size_t i = 0; i < plan.size();) {
    pkts.clear();
    for (; pkts.size() < burst && i < plan.size(); ++i)
      pkts.push_back({plan[i].key, plan[i].seq,
                      reinterpret_cast<const std::uint8_t*>(plan[i].bytes.data()),
                      static_cast<std::uint32_t>(plan[i].bytes.size())});
    insp.packet_batch(pkts.data(), pkts.size(),
                      [&](std::uint32_t id, std::uint64_t end) {
                        sink.matches.push_back(Match{id, end});
                      });
  }
  return sorted(std::move(sink.matches));
}

TEST(GatedFlowFuzz, GatedEqualsUngatedAcrossDeliveryShapes) {
  const auto inputs = compile_patterns(kGatePatterns);
  const nfa::Nfa n = nfa::build_nfa(inputs);
  const auto m = core::build_mfa(inputs);
  ASSERT_TRUE(m.has_value());
  ASSERT_TRUE(m->prefilter().gate_enabled()) << m->prefilter().status();

  std::uint64_t total_skips = 0, total_passes = 0;
  for (std::uint64_t round = 0; round < 12; ++round) {
    util::Rng rng(8800 + round);
    MatchVec expected;
    std::vector<Delivery> big, small, shuffled;
    const std::size_t nflows = 1 + rng.below(3);
    for (std::uint32_t f = 0; f < nflows; ++f) {
      const flow::FlowKey key{f + 1, 7, 1000, 443, 6};
      const std::string content = make_gate_content(rng);
      nfa::NfaScanner ref(n);
      for (const Match& mm : ref.scan(content)) expected.push_back(mm);
      // Large in-order segments: the gate fires. Small segments: below the
      // gate floor, so this delivery is the in-process ungated reference.
      // Shuffled: reorder + retransmission through the reassembly buffer.
      const auto a = plan_flow(key, content, 120, 300, false, rng);
      const auto b = plan_flow(key, content, 8, 48, false, rng);
      const auto c = plan_flow(key, content, 60, 200, true, rng);
      big.insert(big.end(), a.begin(), a.end());
      small.insert(small.end(), b.begin(), b.end());
      shuffled.insert(shuffled.end(), c.begin(), c.end());
    }
    const MatchVec want = sorted(std::move(expected));

    flow::FlowInspector<core::Mfa> gated{*m};
    flow::FlowInspector<core::Mfa> ungated{*m};
    flow::FlowInspector<core::Mfa> reordered{*m};
    flow::FlowInspector<core::Mfa> batched{*m};
    flow::FlowInspector<nfa::Nfa> plain_nfa{n};
    EXPECT_EQ(run_packets(gated, big), want) << "round " << round;
    EXPECT_EQ(run_packets(ungated, small), want) << "round " << round;
    EXPECT_EQ(run_packets(reordered, shuffled), want) << "round " << round;
    EXPECT_EQ(run_bursts(batched, big, 64), want) << "round " << round;
    EXPECT_EQ(run_packets(plain_nfa, big), want) << "round " << round;
    EXPECT_EQ(ungated.prefilter_skip_count(), 0u);  // floor keeps it dark
    total_skips += gated.prefilter_skip_count() + batched.prefilter_skip_count();
    total_passes += gated.prefilter_pass_count();

    flow::TieredFlowInspector<core::Mfa> tiered{*m};
    flow::TieredFlowInspector<core::Mfa> tiered_batched{*m};
    EXPECT_EQ(run_packets(tiered, big), want) << "round " << round;
    EXPECT_EQ(run_bursts(tiered_batched, big, 64), want) << "round " << round;
    total_skips += tiered.prefilter_skip_count();
  }
  // The fuzz is vacuous if the gate never armed in anger.
  EXPECT_GT(total_skips, 0u);
  EXPECT_GT(total_passes, 0u);
}

TEST(GatedFlowFuzz, IcaseCorpusStaysByteIdentical) {
  regex::ParseOptions popts;
  popts.icase = true;
  std::vector<nfa::PatternInput> inputs;
  std::uint32_t id = 1;
  for (const auto& src : kGatePatterns)
    inputs.push_back(nfa::PatternInput{regex::parse_or_die(src, popts), id++});
  const nfa::Nfa n = nfa::build_nfa(inputs);
  core::BuildOptions bopts;
  bopts.parse = popts;
  const auto m = core::build_mfa(inputs, bopts);
  ASSERT_TRUE(m.has_value());

  for (std::uint64_t round = 0; round < 8; ++round) {
    util::Rng rng(6600 + round);
    std::string content = make_gate_content(rng);
    // Randomize the case of planted literal bytes (filler has no letters
    // with case significance in the literal set).
    for (auto& c : content)
      if (c >= 'a' && c <= 'z' && rng.chance(0.5)) c = static_cast<char>(c - 32);
    nfa::NfaScanner ref(n);
    const MatchVec want = sorted(ref.scan(content));

    const flow::FlowKey key{1, 7, 1000, 443, 6};
    const auto big = plan_flow(key, content, 120, 300, false, rng);
    const auto small = plan_flow(key, content, 8, 48, false, rng);
    flow::FlowInspector<core::Mfa> gated{*m};
    flow::FlowInspector<core::Mfa> ungated{*m};
    EXPECT_EQ(run_packets(gated, big), want) << "round " << round;
    EXPECT_EQ(run_packets(ungated, small), want) << "round " << round;
  }
}

TEST(GatedFlow, AttributedMatchesAgreeAcrossGenerations) {
  // (ids, offsets, generations) must agree between gated (large-segment) and
  // ungated (small-segment) delivery, including across a kDrainOld hot swap
  // where pre-swap flows finish on generation 0 and post-swap flows carry
  // generation 2.
  const auto inputs = compile_patterns(kGatePatterns);
  const auto m1 = core::build_mfa(inputs);
  const auto m2 = core::build_mfa(inputs);
  ASSERT_TRUE(m1.has_value() && m2.has_value());

  util::Rng rng(345);
  const flow::FlowKey pre{1, 7, 1000, 443, 6};
  const flow::FlowKey post{2, 7, 1000, 443, 6};
  const std::string content_a = make_gate_content(rng);
  const std::string content_b = make_gate_content(rng);

  using Attributed =
      std::tuple<std::uint32_t, std::uint64_t, std::uint32_t, std::uint64_t>;
  // Segmentation deliberately differs between the two runs; only the
  // reassembled byte stream (and therefore the attribution) is shared.
  const auto run = [&](std::size_t min_seg, std::size_t max_seg) {
    flow::FlowInspector<core::Mfa> insp{*m1};
    std::vector<Attributed> out;
    const auto deliver = [&](const std::vector<Delivery>& plan) {
      std::vector<flow::Packet> pkts;
      for (const auto& d : plan)
        pkts.push_back({d.key, d.seq,
                        reinterpret_cast<const std::uint8_t*>(d.bytes.data()),
                        static_cast<std::uint32_t>(d.bytes.size())});
      insp.packet_batch_attributed(
          pkts.data(), pkts.size(),
          [&](const flow::FlowKey& k, std::uint64_t gen, std::uint32_t mid,
              std::uint64_t end) { out.emplace_back(k.src_ip, gen, mid, end); },
          [](const flow::Packet&) {});
    };
    util::Rng rng_a(12), rng_b(13);
    deliver(plan_flow(pre, content_a, min_seg, max_seg, false, rng_a));
    insp.adopt_engine(*m2, 2, flow::SwapPolicy::kDrainOld);
    deliver(plan_flow(post, content_b, min_seg, max_seg, false, rng_b));
    std::sort(out.begin(), out.end());
    return out;
  };

  const auto gated = run(120, 300);
  const auto ungated = run(8, 48);
  EXPECT_EQ(gated, ungated);
  // The swap must be visible in the attribution: both generations present.
  const auto has_gen = [&](std::uint64_t g) {
    return std::any_of(gated.begin(), gated.end(),
                       [&](const Attributed& a) { return std::get<1>(a) == g; });
  };
  EXPECT_TRUE(has_gen(0));
  EXPECT_TRUE(has_gen(2));
}

TEST(GatedFlow, CountersTrackPassAndSkip) {
  const auto m = build_gated_mfa();
  ASSERT_TRUE(m.has_value());
  util::Rng rng(55);
  flow::FlowInspector<core::Mfa> insp{*m};
  CountingSink sink;
  const flow::FlowKey key{9, 9, 9, 9, 6};
  std::uint64_t seq = 0;
  const auto send = [&](const std::string& bytes) {
    insp.packet(flow::Packet{key, seq,
                             reinterpret_cast<const std::uint8_t*>(bytes.data()),
                             static_cast<std::uint32_t>(bytes.size())},
                sink);
    seq += bytes.size();
  };
  send(filler(rng, 200));  // clean + large: skip
  EXPECT_EQ(insp.prefilter_skip_count(), 1u);
  EXPECT_EQ(insp.prefilter_pass_count(), 0u);
  std::string dirty = filler(rng, 200);
  dirty.replace(90, 4, "wxyz");
  send(dirty);  // literal present: pass
  EXPECT_EQ(insp.prefilter_pass_count(), 1u);
  send(filler(rng, 16));  // below the floor: neither counter moves
  EXPECT_EQ(insp.prefilter_skip_count(), 1u);
  EXPECT_EQ(insp.prefilter_pass_count(), 1u);
}

}  // namespace
}  // namespace mfa
