#include "dfa/dfa.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "engine_test_util.h"
#include "regex/sample.h"
#include "util/binio.h"
#include "util/rng.h"

namespace mfa::dfa {
namespace {

using mfa::testing::compile_patterns;
using mfa::testing::sorted;

Dfa build(const std::vector<std::string>& sources, BuildOptions opts = {}) {
  const nfa::Nfa n = nfa::build_nfa(compile_patterns(sources));
  auto d = build_dfa(n, opts);
  EXPECT_TRUE(d.has_value());
  return *std::move(d);
}

MatchVec scan(const std::vector<std::string>& sources, const std::string& input) {
  const Dfa d = build(sources);
  DfaScanner s(d);
  return sorted(s.scan(input));
}

TEST(Dfa, MatchesEqualNfaOnBasics) {
  const std::vector<std::string> pats = {"abc", ".*ab.*cd", "x[0-9]+y", "^head"};
  for (const std::string input :
       {"abc", "ab cd abc cd", "x123y x9y", "headless", "no match here", ""}) {
    EXPECT_EQ(scan(pats, input), sorted(mfa::testing::reference_matches(pats, input)))
        << input;
  }
}

TEST(Dfa, AcceptingStatesRemappedFirst) {
  const Dfa d = build({"ab", "cd"});
  EXPECT_GT(d.accepting_state_count(), 0u);
  for (std::uint32_t s = 0; s < d.state_count(); ++s) {
    const auto [first, last] = s < d.accepting_state_count()
                                   ? d.accepts(s)
                                   : std::pair<const std::uint32_t*, const std::uint32_t*>{
                                         nullptr, nullptr};
    if (s < d.accepting_state_count()) EXPECT_NE(first, last);
  }
}

TEST(Dfa, ByteClassesPartitionAlphabet) {
  const nfa::Nfa n = nfa::build_nfa(compile_patterns({"[a-f]x|[0-9]y"}));
  const auto [cls, count] = compute_byte_classes(n);
  EXPECT_GT(count, 1u);
  EXPECT_LE(count, 256u);
  for (unsigned b = 0; b < 256; ++b) EXPECT_LT(cls[b], count);
  // All of a-f must share a class; digits share another; they differ.
  for (char c = 'b'; c <= 'f'; ++c) EXPECT_EQ(cls[static_cast<unsigned char>(c)], cls['a']);
  for (char c = '1'; c <= '9'; ++c) EXPECT_EQ(cls[static_cast<unsigned char>(c)], cls['0']);
  EXPECT_NE(cls['a'], cls['0']);
  EXPECT_NE(cls['x'], cls['y']);
}

TEST(Dfa, StateCapFailsConstruction) {
  // Multiple dot-star patterns explode; a tiny cap must trip.
  const std::vector<std::string> pats = {".*aaa.*bbb.*ccc", ".*ddd.*eee.*fff",
                                         ".*ggg.*hhh.*iii"};
  const nfa::Nfa n = nfa::build_nfa(compile_patterns(pats));
  BuildOptions opts;
  opts.max_states = 50;
  BuildStats stats;
  EXPECT_FALSE(build_dfa(n, opts, &stats).has_value());
  EXPECT_TRUE(stats.failed);
  // The cap is enforced at insertion: construction stops the moment the
  // 51st subset would be interned, never discovering states past the cap.
  EXPECT_EQ(stats.states, 50u);
}

TEST(Dfa, StateCapIsExact) {
  // Regression for the off-by-one where the cap was checked only after
  // inserting: an automaton with exactly N reachable subsets must build
  // with max_states == N and fail with max_states == N - 1.
  const std::vector<std::string> pats = {".*abc.*def"};
  const nfa::Nfa n = nfa::build_nfa(compile_patterns(pats));
  const auto unbounded = build_dfa(n);
  ASSERT_TRUE(unbounded.has_value());
  const std::uint32_t exact = unbounded->state_count();
  ASSERT_GT(exact, 1u);

  BuildOptions at_cap;
  at_cap.max_states = exact;
  BuildStats at_cap_stats;
  const auto ok = build_dfa(n, at_cap, &at_cap_stats);
  ASSERT_TRUE(ok.has_value());
  EXPECT_FALSE(at_cap_stats.failed);
  EXPECT_EQ(ok->state_count(), exact);

  BuildOptions below_cap;
  below_cap.max_states = exact - 1;
  BuildStats below_stats;
  EXPECT_FALSE(build_dfa(n, below_cap, &below_stats).has_value());
  EXPECT_TRUE(below_stats.failed);
  EXPECT_EQ(below_stats.states, exact - 1);
}

TEST(Dfa, ParallelConstructionIsByteIdentical) {
  // Any thread count must yield the exact same automaton as the sequential
  // explorer: same numbering, same table, same accept geometry.
  const std::vector<std::string> pats = {".*abcd.*efgh", ".*ijkl.*mnop",
                                         "x[0-9]{1,3}y", "a(b|c)+d", "^head"};
  const nfa::Nfa n = nfa::build_nfa(compile_patterns(pats));
  const auto seq = build_dfa(n);
  ASSERT_TRUE(seq.has_value());
  for (const std::uint32_t threads : {2u, 4u, 0u}) {
    BuildOptions opts;
    opts.threads = threads;
    const auto par = build_dfa(n, opts);
    ASSERT_TRUE(par.has_value()) << threads;
    ASSERT_EQ(par->state_count(), seq->state_count()) << threads;
    EXPECT_EQ(par->start(), seq->start());
    EXPECT_EQ(par->column_count(), seq->column_count());
    EXPECT_EQ(par->accepting_state_count(), seq->accepting_state_count());
    const std::size_t words =
        static_cast<std::size_t>(seq->state_count()) * seq->column_count();
    EXPECT_TRUE(std::equal(seq->table_data(), seq->table_data() + words,
                           par->table_data()))
        << threads;
    for (std::uint32_t s = 0; s < seq->accepting_state_count(); ++s) {
      const auto [sf, sl] = seq->accepts(s);
      const auto [pf, pl] = par->accepts(s);
      ASSERT_EQ(sl - sf, pl - pf);
      EXPECT_TRUE(std::equal(sf, sl, pf));
    }
  }
}

TEST(Dfa, ParallelConstructionHonorsCap) {
  const std::vector<std::string> pats = {".*aaa.*bbb.*ccc", ".*ddd.*eee.*fff",
                                         ".*ggg.*hhh.*iii"};
  const nfa::Nfa n = nfa::build_nfa(compile_patterns(pats));
  BuildOptions opts;
  opts.max_states = 50;
  opts.threads = 4;
  BuildStats stats;
  EXPECT_FALSE(build_dfa(n, opts, &stats).has_value());
  EXPECT_TRUE(stats.failed);
}

TEST(Dfa, HeadlessSerializeRoundTrip) {
  // A dense automaton saved without its table (the MFAC v3 delta layout)
  // must load with allow_empty_table and accept a restored table.
  const Dfa d = build({"abc", ".*xy"});
  std::vector<std::uint32_t> table(
      d.table_data(),
      d.table_data() + static_cast<std::size_t>(d.state_count()) * d.column_count());

  Dfa headless = d;
  headless.drop_table();
  EXPECT_FALSE(headless.has_table());
  util::FilePtr f(std::tmpfile());
  ASSERT_NE(f, nullptr);
  {
    util::BinWriter w(f.get());
    headless.serialize(w);
    ASSERT_TRUE(w.ok());
  }

  std::rewind(f.get());
  Dfa strict;
  util::BinReader strict_r(f.get());
  EXPECT_FALSE(Dfa::deserialize(strict_r, strict));  // default rejects headless

  std::rewind(f.get());
  Dfa loaded;
  util::BinReader r(f.get());
  ASSERT_TRUE(Dfa::deserialize(r, loaded, /*allow_empty_table=*/true));
  EXPECT_FALSE(loaded.has_table());
  EXPECT_EQ(loaded.state_count(), d.state_count());

  // Wrong-size or out-of-range tables are rejected; the real one installs.
  EXPECT_FALSE(loaded.restore_table(std::vector<std::uint32_t>(3, 0)));
  std::vector<std::uint32_t> bad = table;
  bad[0] = d.state_count();
  EXPECT_FALSE(loaded.restore_table(std::move(bad)));
  ASSERT_TRUE(loaded.restore_table(table));
  DfaScanner a(d);
  DfaScanner b(loaded);
  EXPECT_EQ(sorted(a.scan(std::string("zzabcxyzz"))),
            sorted(b.scan(std::string("zzabcxyzz"))));
}

TEST(Dfa, MinimizationPreservesMatchesAndShrinks) {
  const std::vector<std::string> pats = {"ab(c|d)", "abe?f"};
  const nfa::Nfa n = nfa::build_nfa(compile_patterns(pats));
  BuildStats plain_stats;
  const auto plain = build_dfa(n, {}, &plain_stats);
  BuildOptions min_opts;
  min_opts.minimize = true;
  BuildStats min_stats;
  const auto minimized = build_dfa(n, min_opts, &min_stats);
  ASSERT_TRUE(plain && minimized);
  EXPECT_LE(minimized->state_count(), plain->state_count());
  EXPECT_EQ(min_stats.minimized, minimized->state_count());

  util::Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    std::string input;
    for (int j = 0; j < 40; ++j)
      input += static_cast<char>("abcdef"[rng.below(6)]);
    DfaScanner a(*plain);
    DfaScanner b(*minimized);
    EXPECT_EQ(sorted(a.scan(input)), sorted(b.scan(input)));
  }
}

TEST(Dfa, MemoryImageAccounting) {
  const Dfa d = build({"abc"});
  const std::size_t full = d.memory_image_bytes(true);
  const std::size_t compressed = d.memory_image_bytes(false);
  EXPECT_GE(full, static_cast<std::size_t>(d.state_count()) * 256 * 4);
  EXPECT_LT(compressed, full);
  EXPECT_GE(compressed, static_cast<std::size_t>(d.state_count()) * d.column_count() * 4);
}

TEST(Dfa, StatefulFeedAcrossChunks) {
  const Dfa d = build({".*begin.*end"});
  DfaScanner s(d);
  CollectingSink sink;
  const std::string part1 = "xxbeg";
  const std::string part2 = "inxxe";
  const std::string part3 = "nd";
  s.feed(reinterpret_cast<const std::uint8_t*>(part1.data()), part1.size(), 0, sink);
  s.feed(reinterpret_cast<const std::uint8_t*>(part2.data()), part2.size(), part1.size(),
         sink);
  s.feed(reinterpret_cast<const std::uint8_t*>(part3.data()), part3.size(),
         part1.size() + part2.size(), sink);
  ASSERT_EQ(sink.matches.size(), 1u);
  EXPECT_EQ(sink.matches[0].end, 11u);
}

TEST(Dfa, ContextIsFourBytes) {
  EXPECT_EQ(DfaScanner::context_bytes(), 4u);
}

TEST(Dfa, DotStarStateExplosionIsMultiplicative) {
  // Adding a second dot-star pattern should grow states far more than the
  // sum of pattern sizes (paper Sec. IV-A).
  const nfa::Nfa one = nfa::build_nfa(compile_patterns({".*abcd.*efgh"}));
  const nfa::Nfa two =
      nfa::build_nfa(compile_patterns({".*abcd.*efgh", ".*ijkl.*mnop"}));
  const auto d1 = build_dfa(one);
  const auto d2 = build_dfa(two);
  ASSERT_TRUE(d1 && d2);
  EXPECT_GT(d2->state_count(), d1->state_count() * 3 / 2);
}

TEST(Dfa, AnchoredPatternsDie) {
  const Dfa d = build({"^abc"});
  DfaScanner s(d);
  EXPECT_TRUE(s.scan(std::string("xxabc")).empty());
  EXPECT_EQ(s.scan(std::string("abc")).size(), 1u);
}

TEST(Dfa, RandomRegexDfaEqualsNfaProperty) {
  // Randomized cross-check: sample strings from each pattern's language and
  // embed them in noise; NFA and DFA must agree exactly.
  util::Rng rng(123);
  const std::vector<std::string> pats = {"a(b|c)+d", ".*foo[0-9]{1,3}bar", "x.?y"};
  const nfa::Nfa n = nfa::build_nfa(compile_patterns(pats));
  const auto d = build_dfa(n);
  ASSERT_TRUE(d.has_value());
  for (int i = 0; i < 100; ++i) {
    std::string input = rng.lower_string(rng.below(20));
    const auto& pick = pats[rng.below(pats.size())];
    input += regex::sample_match(regex::parse_or_die(pick), rng);
    input += rng.lower_string(rng.below(20));
    nfa::NfaScanner ns(n);
    DfaScanner ds(*d);
    EXPECT_EQ(sorted(ns.scan(input)), sorted(ds.scan(input))) << input;
  }
}

}  // namespace
}  // namespace mfa::dfa
