// Live ruleset hot swap (DESIGN.md Sec. 10): FlowInspector generation
// adoption/retirement, the reload registry/HotSwapper, and the
// swap-under-load contract on the sharded pipeline — no packet lost, every
// match attributed to the generation that scanned it, old EngineSets
// destroyed once the last flow referencing them retires. The TSan CI job
// runs this file.
#include "pipeline/reload.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "engine_test_util.h"
#include "flow/flow.h"
#include "obs/metrics.h"
#include "pipeline/pipeline.h"

namespace mfa::pipeline {
namespace {

using mfa::testing::compile_patterns;
using mfa::testing::sorted;

core::Mfa build(const std::vector<std::string>& patterns) {
  auto m = core::build_mfa(compile_patterns(patterns));
  EXPECT_TRUE(m.has_value());
  return *std::move(m);
}

flow::Packet packet(const flow::FlowKey& key, std::uint64_t seq, const std::string& s) {
  return flow::Packet{key, seq, reinterpret_cast<const std::uint8_t*>(s.data()),
                      static_cast<std::uint32_t>(s.size())};
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

// --- FlowInspector generation layer -----------------------------------------

TEST(FlowSwap, ResetOnNextPacketRestartsContextOnNewEngine) {
  const core::Mfa a = build({".*abcd"});              // id 1
  const core::Mfa b = build({".*zzzz", ".*wxyz"});    // wxyz = id 2
  flow::FlowInspector<core::Mfa> insp{a};
  const flow::FlowKey key{1, 2, 3, 4, 6};
  CollectingSink sink;
  const std::string first = "ab", second = "cdwxyz";
  insp.packet(packet(key, 0, first), sink);
  EXPECT_TRUE(sink.matches.empty());

  insp.adopt_engine(b, 1, flow::SwapPolicy::kResetOnNextPacket);
  EXPECT_EQ(insp.current_generation(), 1u);
  insp.packet(packet(key, 2, second), sink);
  // The (q, m) restarted on engine b: the straddling "abcd" is forgotten,
  // the new ruleset's "wxyz" fires at its stream position.
  ASSERT_EQ(sink.matches.size(), 1u);
  EXPECT_EQ(sink.matches[0].id, 2u);
  EXPECT_EQ(insp.flows_on_generation(1), 1u);
  EXPECT_EQ(insp.retired_generation_count(), 0u);
}

TEST(FlowSwap, DrainOldFinishesExistingFlowsOnOldEngine) {
  const core::Mfa a = build({".*abcd"});              // id 1
  const core::Mfa b = build({".*zzzz", ".*wxyz"});    // wxyz = id 2
  flow::FlowInspector<core::Mfa> insp{a};
  const flow::FlowKey old_key{1, 2, 3, 4, 6};
  const flow::FlowKey new_key{5, 6, 7, 8, 6};
  CollectingSink sink;
  const std::string first = "ab", second = "cdwxyz", fresh = "wxyz";
  insp.packet(packet(old_key, 0, first), sink);

  insp.adopt_engine(b, 1, flow::SwapPolicy::kDrainOld);
  insp.packet(packet(old_key, 2, second), sink);
  // The pre-swap flow drained on engine a: "abcd" completes across the swap.
  ASSERT_EQ(sink.matches.size(), 1u);
  EXPECT_EQ(sink.matches[0].id, 1u);
  EXPECT_EQ(insp.flows_on_generation(0), 1u);
  EXPECT_EQ(insp.retired_generation_count(), 1u);

  insp.packet(packet(new_key, 0, fresh), sink);  // new flow → new engine
  ASSERT_EQ(sink.matches.size(), 2u);
  EXPECT_EQ(sink.matches[1].id, 2u);
  EXPECT_EQ(insp.flows_on_generation(1), 1u);

  // The old generation's record drops with its last flow.
  insp.evict(old_key);
  EXPECT_EQ(insp.retired_generation_count(), 0u);
}

TEST(FlowSwap, RetiredPinReleasedWhenLastDrainingFlowRetires) {
  const core::Mfa base = build({".*abcd"});
  auto owner_b = std::make_shared<core::Mfa>(build({".*efgh"}));
  auto owner_c = std::make_shared<core::Mfa>(build({".*ijkl"}));
  std::weak_ptr<core::Mfa> weak_b = owner_b;

  flow::FlowInspector<core::Mfa> insp{base};
  insp.adopt_engine(*owner_b, 1, flow::SwapPolicy::kDrainOld, owner_b);
  const flow::FlowKey key{9, 9, 9, 9, 6};
  CollectingSink sink;
  const std::string payload = "efgh";
  insp.packet(packet(key, 0, payload), sink);  // flow pinned to generation 1
  ASSERT_EQ(sink.matches.size(), 1u);

  insp.adopt_engine(*owner_c, 2, flow::SwapPolicy::kDrainOld, owner_c);
  owner_b.reset();  // inspector's retired record is now the only owner
  EXPECT_FALSE(weak_b.expired());
  EXPECT_EQ(insp.retired_generation_count(), 1u);

  insp.evict(key);  // last generation-1 flow retires → pin drops
  EXPECT_TRUE(weak_b.expired());
  EXPECT_EQ(insp.retired_generation_count(), 0u);
}

TEST(FlowSwap, ClearReleasesEveryRetiredGeneration) {
  const core::Mfa base = build({".*abcd"});
  auto owner_b = std::make_shared<core::Mfa>(build({".*efgh"}));
  std::weak_ptr<core::Mfa> weak_b = owner_b;
  flow::FlowInspector<core::Mfa> insp{base};
  insp.adopt_engine(*owner_b, 1, flow::SwapPolicy::kDrainOld, owner_b);
  CollectingSink sink;
  const std::string payload = "efgh";
  insp.packet(packet(flow::FlowKey{1, 1, 1, 1, 6}, 0, payload), sink);
  insp.adopt_engine(base, 2, flow::SwapPolicy::kDrainOld);
  owner_b.reset();
  EXPECT_FALSE(weak_b.expired());
  insp.clear();
  EXPECT_TRUE(weak_b.expired());
}

TEST(FlowSwap, ReAdoptingCurrentGenerationIsANoOp) {
  const core::Mfa a = build({".*abcd"});
  auto owner_b = std::make_shared<core::Mfa>(build({".*efgh"}));
  flow::FlowInspector<core::Mfa> insp{a};
  CollectingSink sink;
  const std::string payload = "x";
  insp.packet(packet(flow::FlowKey{1, 1, 1, 1, 6}, 0, payload), sink);
  insp.adopt_engine(*owner_b, 1, flow::SwapPolicy::kDrainOld, owner_b);
  ASSERT_EQ(insp.retired_generation_count(), 1u);
  // A worker restart replays the staged swap: the same generation must not
  // retire itself (that record could never be released).
  insp.adopt_engine(*owner_b, 1, flow::SwapPolicy::kDrainOld, owner_b);
  EXPECT_EQ(insp.retired_generation_count(), 1u);
  EXPECT_EQ(insp.current_generation(), 1u);
}

TEST(FlowSwap, MixedGenerationBurstScansEachFlowWithItsOwnEngine) {
  const core::Mfa a = build({".*olda"});              // id 1
  const core::Mfa b = build({".*zzzz", ".*newb"});    // newb = id 2
  flow::FlowInspector<core::Mfa> insp{a};
  CollectingSink pre;
  const std::string pad = "pad.";
  std::vector<flow::FlowKey> keys;
  for (std::uint32_t i = 1; i <= 8; ++i) keys.push_back(flow::FlowKey{i, 1, 2, 3, 6});
  for (std::size_t i = 0; i < 4; ++i)  // first four flows exist pre-swap
    insp.packet(packet(keys[i], 0, pad), pre);
  EXPECT_TRUE(pre.matches.empty());

  insp.adopt_engine(b, 1, flow::SwapPolicy::kDrainOld);

  // One burst mixing both generations: the interleaved kernel must route
  // each flow through its own engine (never advance a flow on the wrong
  // automaton), transparently splitting the burst by generation.
  const std::string body = "..olda..newb..";
  std::vector<flow::Packet> burst;
  for (std::size_t i = 0; i < 4; ++i) burst.push_back(packet(keys[i], pad.size(), body));
  for (std::size_t i = 4; i < 8; ++i) burst.push_back(packet(keys[i], 0, body));
  std::vector<std::pair<std::uint64_t, std::uint32_t>> seen;  // (generation, id)
  insp.packet_batch_attributed(
      burst.data(), burst.size(),
      [&](const flow::FlowKey&, std::uint64_t generation, std::uint32_t id,
          std::uint64_t) { seen.emplace_back(generation, id); },
      [](const flow::Packet&) { FAIL() << "no packet may be dropped"; });

  std::size_t old_hits = 0, new_hits = 0;
  for (const auto& [generation, id] : seen) {
    if (generation == 0) {
      EXPECT_EQ(id, 1u);  // old flows see only the old ruleset
      ++old_hits;
    } else {
      EXPECT_EQ(generation, 1u);
      EXPECT_EQ(id, 2u);  // new flows see only the new ruleset
      ++new_hits;
    }
  }
  EXPECT_EQ(old_hits, 4u);
  EXPECT_EQ(new_hits, 4u);
  EXPECT_EQ(insp.flows_on_generation(0), 4u);
  EXPECT_EQ(insp.flows_on_generation(1), 4u);
}

// --- RulesetRegistry / HotSwapper -------------------------------------------

TEST(ReloadRegistry, PublishesIncreasingGenerationsAndAliasedEngines) {
  reload::RulesetRegistry<core::Mfa> registry;
  EXPECT_EQ(registry.current_generation(), 0u);
  EXPECT_EQ(registry.current(), nullptr);

  auto first = registry.publish(build({".*abcd"}), "first.rules");
  auto second = registry.publish(build({".*efgh"}), "second.rules");
  EXPECT_EQ(first->generation, 1u);
  EXPECT_EQ(second->generation, 2u);
  EXPECT_EQ(registry.current_generation(), 2u);
  EXPECT_EQ(registry.current(), second);
  EXPECT_EQ(second->origin, "second.rules");

  // engine_of aliases into the set: same refcount, engine address inside.
  std::shared_ptr<const core::Mfa> engine = reload::engine_of(first);
  EXPECT_EQ(engine.get(), &first->engine);
  std::weak_ptr<const reload::EngineSet<core::Mfa>> weak = first;
  first.reset();
  EXPECT_FALSE(weak.expired());  // the aliased engine pointer pins the set
  engine.reset();
  EXPECT_TRUE(weak.expired());
}

TEST(HotSwap, FailedPrepareNeverTouchesThePipeline) {
  const core::Mfa a = build({".*atk1"});
  ShardedInspector<core::Mfa> pipe(a, Options{});
  reload::RulesetRegistry<core::Mfa> registry;
  reload::HotSwapper<core::Mfa> swapper(registry, pipe);
  pipe.start();
  const reload::SwapReport report = swapper.swap_now(
      []() -> reload::SourceResult<core::Mfa> { return {std::nullopt, "bad rules"}; },
      "broken.rules");
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.error, "bad rules");
  EXPECT_EQ(pipe.current_generation(), 0u);
  EXPECT_EQ(registry.current_generation(), 0u);
  ASSERT_TRUE(swapper.last_report().has_value());
  EXPECT_FALSE(swapper.last_report()->ok);

  const std::string payload = "x atk1 y";
  pipe.submit(packet(flow::FlowKey{1, 1, 1, 1, 6}, 0, payload));
  pipe.finish();
  EXPECT_EQ(pipe.totals().matches, 1u);  // generation 0 kept scanning
}

TEST(HotSwap, CompilesRulesFileAndSwapsIntoRunningPipeline) {
  const std::string rules_path = temp_path("hot.rules");
  std::FILE* f = std::fopen(rules_path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("alert tcp any any -> any any "
             "(msg:\"worm\"; pcre:\"/.*worm77/\"; sid:7;)\n",
             f);
  std::fclose(f);

  const core::Mfa a = build({".*atk1"});
  Options opt;
  opt.collect_flow_matches = true;
  ShardedInspector<core::Mfa> pipe(a, opt);
  reload::RulesetRegistry<core::Mfa> registry;
  reload::HotSwapper<core::Mfa> swapper(registry, pipe);
  pipe.start();

  const reload::SwapReport report = swapper.swap_now(
      [&] { return reload::compile_rules_file(rules_path); }, rules_path);
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.generation, 1u);
  EXPECT_EQ(report.origin, rules_path);
  EXPECT_GE(report.prepare_seconds, 0.0);
  EXPECT_EQ(pipe.current_generation(), 1u);

  // Wait for the worker to adopt, then prove the new ruleset is live.
  while (pipe.adopted_generation() < 1) std::this_thread::yield();
  const std::string payload = "a worm77 b";
  pipe.submit(packet(flow::FlowKey{2, 2, 2, 2, 6}, 0, payload));
  pipe.finish();
  ASSERT_EQ(pipe.flow_matches().size(), 1u);
  EXPECT_EQ(pipe.flow_matches()[0].match.id, 7u);  // match id == sid
  EXPECT_EQ(pipe.flow_matches()[0].generation, 1u);
  std::remove(rules_path.c_str());
}

TEST(HotSwap, CompileRulesFileReportsReadableErrors) {
  auto [missing, missing_err] = reload::compile_rules_file(temp_path("nope.rules"));
  EXPECT_FALSE(missing.has_value());
  EXPECT_NE(missing_err.find("nope.rules"), std::string::npos);

  auto [artifact, artifact_err] = reload::load_artifact(temp_path("nope.mfac"));
  EXPECT_FALSE(artifact.has_value());
  EXPECT_NE(artifact_err.find("nope.mfac"), std::string::npos);
}

TEST(HotSwap, LoadsSavedArtifactAndSwaps) {
  const std::string path = temp_path("swap.mfac");
  ASSERT_TRUE(build({".*sig5end"}).save(path));

  const core::Mfa a = build({".*atk1"});
  ShardedInspector<core::Mfa> pipe(a, Options{});
  reload::RulesetRegistry<core::Mfa> registry;
  reload::HotSwapper<core::Mfa> swapper(registry, pipe);
  pipe.start();
  const reload::SwapReport report =
      swapper.swap_now([&] { return reload::load_artifact(path); }, path);
  ASSERT_TRUE(report.ok) << report.error;
  while (pipe.adopted_generation() < report.generation) std::this_thread::yield();
  const std::string payload = "sig5end";
  pipe.submit(packet(flow::FlowKey{3, 3, 3, 3, 6}, 0, payload));
  pipe.finish();
  EXPECT_EQ(pipe.totals().matches, 1u);
  EXPECT_EQ(pipe.totals().matches_by_generation.at(report.generation), 1u);
  std::remove(path.c_str());
}

// --- Swap under load on the sharded pipeline --------------------------------

/// Deterministic kDrainOld parity: flows opened before the swap must produce
/// exactly the matches a sequential FlowInspector on the OLD engine produces
/// for their full streams; flows opened after it, the NEW engine's matches.
TEST(SwapUnderLoad, DrainOldKeepsPerFlowParityWithSequentialInspectors) {
  const core::Mfa a = build({".*atk1.*vec2"});             // id 1
  reload::RulesetRegistry<core::Mfa> registry;
  auto set = registry.publish(build({".*atk1.*vec2", ".*worm77"}), "b");

  // Multi-packet old flows straddle the swap; their streams only match when
  // both halves are scanned by one context on one engine.
  const std::string half1 = "...atk1...";
  const std::string half2 = "...vec2...worm77...";
  const std::string fresh = "...atk1...vec2...worm77...";
  std::vector<flow::FlowKey> old_keys, new_keys;
  for (std::uint32_t i = 1; i <= 16; ++i) old_keys.push_back(flow::FlowKey{i, 10, 1, 2, 6});
  for (std::uint32_t i = 1; i <= 16; ++i) new_keys.push_back(flow::FlowKey{i, 20, 1, 2, 6});

  // Sequential references, per flow.
  std::unordered_map<flow::FlowKey, MatchVec, flow::FlowKeyHash> expect;
  {
    flow::FlowInspector<core::Mfa> seq_a{a};
    flow::FlowInspector<core::Mfa> seq_b{set->engine};
    for (const auto& key : old_keys) {
      auto sink = [&](std::uint32_t id, std::uint64_t end) {
        expect[key].push_back(Match{id, end});
      };
      seq_a.packet(packet(key, 0, half1), sink);
      seq_a.packet(packet(key, half1.size(), half2), sink);
    }
    for (const auto& key : new_keys) {
      auto sink = [&](std::uint32_t id, std::uint64_t end) {
        expect[key].push_back(Match{id, end});
      };
      seq_b.packet(packet(key, 0, fresh), sink);
    }
  }

  Options opt;
  opt.shards = 2;
  opt.batch_size = 1;  // phase barrier below counts processed packets exactly
  opt.collect_flow_matches = true;
  opt.swap_policy = flow::SwapPolicy::kDrainOld;
  obs::MetricsRegistry metrics(obs::MetricsRegistry::Options{.shards = 2});
  opt.metrics = &metrics;
  ShardedInspector<core::Mfa> pipe(a, opt);
  pipe.start();

  // Phase 1: open every old flow on generation 0 and wait until the workers
  // have processed them all, so flow creation deterministically precedes the
  // swap.
  for (const auto& key : old_keys) pipe.submit(packet(key, 0, half1));
  const auto processed = [&] {
    std::uint64_t n = 0;
    for (const auto& s : metrics.snapshot().shards) n += s.packets;
    return n;
  };
  while (processed() < old_keys.size()) std::this_thread::yield();

  pipe.swap_ruleset(reload::engine_of(set), set->generation);
  while (pipe.adopted_generation() < set->generation) std::this_thread::yield();

  // Phase 2: finish the old flows (still generation 0 under kDrainOld) and
  // open the new ones (generation 1).
  for (const auto& key : old_keys) pipe.submit(packet(key, half1.size(), half2));
  for (const auto& key : new_keys) pipe.submit(packet(key, 0, fresh));
  pipe.finish();

  const ShardStats t = pipe.totals();
  EXPECT_EQ(t.submitted, t.scanned + t.shed_total());
  EXPECT_EQ(t.shed_total(), 0u);

  std::unordered_map<flow::FlowKey, MatchVec, flow::FlowKeyHash> got;
  for (const FlowMatch& fm : pipe.flow_matches()) {
    got[fm.key].push_back(fm.match);
    const bool is_old = fm.key.dst_ip == 10;
    EXPECT_EQ(fm.generation, is_old ? 0u : 1u) << "flow " << fm.key.src_ip;
  }
  ASSERT_EQ(got.size(), expect.size());
  for (auto& [key, matches] : expect)
    EXPECT_EQ(sorted(got[key]), sorted(matches)) << "flow " << key.src_ip;
}

/// The TSan stress: a background HotSwapper compiles and swaps twice while
/// the producer streams packets. Accounting must stay exact, generation-2
/// rules must only be credited to generation >= 1 contexts, and the first
/// swapped EngineSet must be destroyed (refcount zero) once the pipeline
/// and registry let go.
TEST(SwapUnderLoad, AsyncSwapKeepsAccountingExactAndRetiresOldEngineSet) {
  const core::Mfa a = build({".*atk1.*vec2"});  // id 1 in every generation
  Options opt;
  opt.shards = 2;
  opt.collect_flow_matches = true;
  opt.swap_policy = flow::SwapPolicy::kDrainOld;
  ShardedInspector<core::Mfa> pipe(a, opt);
  reload::RulesetRegistry<core::Mfa> registry;
  std::weak_ptr<const reload::EngineSet<core::Mfa>> weak_first;
  {
    reload::HotSwapper<core::Mfa> swapper(registry, pipe);
    pipe.start();

    const std::string hit = "..atk1..vec2..";
    const std::string worm = "..worm77..";
    // One fresh flow per packet: under kDrainOld each flow's generation is
    // whatever its worker had adopted at creation, so post-swap flows pick
    // up the new rules while the swap races the producer.
    const auto key_of = [](std::uint32_t i) {
      return flow::FlowKey{i, 7, 1, 2, 6};
    };
    constexpr std::uint32_t kPackets = 6000;
    for (std::uint32_t i = 0; i < kPackets; ++i) {
      // Swaps launch from the swapper's own thread, racing the submits:
      // generation 1 adds ".*worm77" (id 2), generation 2 keeps it.
      if (i == 1000)
        ASSERT_TRUE(swapper.swap_async(
            [] {
              return reload::SourceResult<core::Mfa>{
                  core::build_mfa(compile_patterns({".*atk1.*vec2", ".*worm77"})),
                  ""};
            },
            "gen1"));
      if (i == 4000) {
        swapper.join();  // at most one async swap in flight
        weak_first = registry.current();  // generation 1's set, about to be replaced
        ASSERT_TRUE(swapper.swap_async(
            [] {
              return reload::SourceResult<core::Mfa>{
                  core::build_mfa(compile_patterns({".*atk1.*vec2", ".*worm77"})),
                  ""};
            },
            "gen2"));
      }
      const std::string& payload = i % 3 == 0 ? worm : hit;
      pipe.submit(packet(key_of(i), 0, payload));
    }
    swapper.join();
    ASSERT_TRUE(swapper.last_report().has_value());
    EXPECT_TRUE(swapper.last_report()->ok) << swapper.last_report()->error;
    EXPECT_EQ(registry.current_generation(), 2u);
    pipe.finish();

    const ShardStats t = pipe.totals();
    EXPECT_EQ(t.submitted, kPackets);
    EXPECT_EQ(t.submitted, t.scanned + t.shed_total());  // exact, no loss
    EXPECT_EQ(t.shed_total(), 0u);                       // backpressure mode
    std::uint64_t by_generation = 0;
    for (const auto& [generation, count] : t.matches_by_generation) {
      EXPECT_LE(generation, 2u);
      by_generation += count;
    }
    EXPECT_EQ(by_generation, t.matches);
    // ".*worm77" exists only in generations >= 1: every id-2 match must be
    // attributed to a context built after the first swap.
    bool saw_worm = false;
    for (const FlowMatch& fm : pipe.flow_matches()) {
      if (fm.match.id != 2u) continue;
      saw_worm = true;
      EXPECT_GE(fm.generation, 1u);
    }
    EXPECT_TRUE(saw_worm);  // the swap demonstrably took effect under load
  }
  // Pipeline finished and swapper destroyed: nothing outside the registry
  // may still own any set, and the registry only holds the newest.
  EXPECT_TRUE(weak_first.expired());
}

/// The refcount-zero acceptance check, deterministic: publish gen 1, run
/// flows on it, swap to gen 2, finish — after the shards are gone the first
/// EngineSet must be destroyed even though the registry/pipeline still pin
/// the second.
TEST(SwapUnderLoad, OldEngineSetDestroyedAfterLastFlowRetires) {
  const core::Mfa a = build({".*atk1"});
  reload::RulesetRegistry<core::Mfa> registry;
  auto set1 = registry.publish(build({".*sig5end"}), "gen1");
  auto set2 = registry.publish(build({".*worm77"}), "gen2");
  std::weak_ptr<const reload::EngineSet<core::Mfa>> weak1 = set1;

  {
    Options opt;
    opt.shards = 2;
    opt.batch_size = 1;  // the processed-packet barrier below is exact
    opt.swap_policy = flow::SwapPolicy::kDrainOld;
    obs::MetricsRegistry metrics(obs::MetricsRegistry::Options{.shards = 2});
    opt.metrics = &metrics;
    ShardedInspector<core::Mfa> pipe(a, opt);
    pipe.start();
    pipe.swap_ruleset(reload::engine_of(set1), set1->generation);
    while (pipe.adopted_generation() < set1->generation) std::this_thread::yield();
    const std::string payload = "sig5end";
    for (std::uint32_t i = 1; i <= 32; ++i)
      pipe.submit(packet(flow::FlowKey{i, 1, 1, 1, 6}, 0, payload));
    // Let every flow be created on generation 1 before publishing 2, so the
    // draining flows are what keeps set1 pinned until the shards die.
    const auto processed = [&] {
      std::uint64_t n = 0;
      for (const auto& s : metrics.snapshot().shards) n += s.packets;
      return n;
    };
    while (processed() < 32) std::this_thread::yield();
    pipe.swap_ruleset(reload::engine_of(set2), set2->generation);
    pipe.finish();
    EXPECT_EQ(pipe.totals().matches, 32u);
    set1.reset();
    // After finish() the shards (and their draining flows) are destroyed:
    // nothing pins generation 1 anymore.
    EXPECT_TRUE(weak1.expired());
    EXPECT_FALSE(set2 == nullptr);  // gen 2 stays alive via registry + pipe
  }
  EXPECT_EQ(registry.current_generation(), 2u);
}

/// Re-publishing a swap before start() (or between runs) must reach fresh
/// workers: they adopt the staged generation on their first iteration.
TEST(SwapUnderLoad, SwapStagedBeforeStartIsAdoptedByFreshWorkers) {
  const core::Mfa a = build({".*atk1"});
  reload::RulesetRegistry<core::Mfa> registry;
  auto set = registry.publish(build({".*worm77"}), "pre-start");
  Options opt;
  opt.shards = 2;
  ShardedInspector<core::Mfa> pipe(a, opt);
  pipe.swap_ruleset(reload::engine_of(set), set->generation);
  pipe.start();
  while (pipe.adopted_generation() < set->generation) std::this_thread::yield();
  const std::string payload = "worm77";
  pipe.submit(packet(flow::FlowKey{1, 1, 1, 1, 6}, 0, payload));
  pipe.finish();
  EXPECT_EQ(pipe.totals().matches, 1u);
  EXPECT_EQ(pipe.totals().matches_by_generation.at(set->generation), 1u);
}

}  // namespace
}  // namespace mfa::pipeline
