#include <gtest/gtest.h>

#include "util/dynamic_bitset.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timing.h"

namespace mfa::util {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
  EXPECT_NE(a(), c());
}

TEST(Rng, BelowStaysInRange) {
  Rng r(1);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.between(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(Rng, Uniform01InRange) {
  Rng r(2);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng r(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, LowerStringContents) {
  Rng r(4);
  const std::string s = r.lower_string(64);
  EXPECT_EQ(s.size(), 64u);
  for (const char c : s) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Rng r(5);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Fnv1a, StableAndDistinct) {
  EXPECT_EQ(fnv1a("abc"), fnv1a("abc"));
  EXPECT_NE(fnv1a("abc"), fnv1a("abd"));
}

TEST(DynamicBitset, SetTestReset) {
  DynamicBitset b(200);
  EXPECT_FALSE(b.any());
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(199);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(199));
  EXPECT_FALSE(b.test(100));
  EXPECT_EQ(b.count(), 4u);
  b.reset(64);
  EXPECT_FALSE(b.test(64));
  b.clear();
  EXPECT_FALSE(b.any());
}

TEST(DynamicBitset, OrAndIntersect) {
  DynamicBitset a(128), b(128);
  a.set(3);
  a.set(100);
  b.set(100);
  b.set(5);
  EXPECT_TRUE(a.intersects(b));
  DynamicBitset c = a;
  c |= b;
  EXPECT_EQ(c.count(), 3u);
  c &= b;
  EXPECT_EQ(c.count(), 2u);
  DynamicBitset d(128);
  d.set(7);
  EXPECT_FALSE(a.intersects(d));
}

TEST(DynamicBitset, ForEachAndIndices) {
  DynamicBitset b(130);
  b.set(1);
  b.set(64);
  b.set(129);
  EXPECT_EQ(b.to_indices(), (std::vector<std::uint32_t>{1, 64, 129}));
}

TEST(DynamicBitset, HashAndEquality) {
  DynamicBitset a(64), b(64);
  a.set(5);
  b.set(5);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  b.set(6);
  EXPECT_FALSE(a == b);
}

TEST(Timing, RdtscMonotonicish) {
  const auto a = rdtsc_now();
  const auto b = rdtsc_now();
  EXPECT_GE(b, a);
  EXPECT_GT(tsc_ticks_per_second(), 1e6);
}

TEST(Timing, WallTimerAdvances) {
  WallTimer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GT(t.seconds(), 0.0);
}

TEST(Table, AlignedRendering) {
  TextTable t({"Set", "States", "MB"});
  t.add_row({"C7p", "104", "0.05"});
  t.add_row({"B217p", "5332", "2.60"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("C7p"), std::string::npos);
  EXPECT_NE(s.find("5332"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, CsvRendering) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Table, ShortRowsPadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NE(t.to_string().find("only"), std::string::npos);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(format_double(1.2345, 2), "1.23");
  EXPECT_EQ(format_bytes_mb(1024 * 1024), "1.00");
  EXPECT_EQ(format_bytes_mb(256 * 1024 * 1024, 0), "256");
}

}  // namespace
}  // namespace mfa::util
