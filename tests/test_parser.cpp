#include "regex/parser.h"

#include <gtest/gtest.h>

#include "regex/ast.h"

namespace mfa::regex {
namespace {

NodePtr parse_root(const std::string& src) {
  return parse_or_die(src).root;
}

TEST(Parser, Literal) {
  const NodePtr n = parse_root("abc");
  ASSERT_EQ(n->kind, NodeKind::Concat);
  ASSERT_EQ(n->children.size(), 3u);
  EXPECT_EQ(n->children[0]->kind, NodeKind::CharSet);
  EXPECT_TRUE(n->children[0]->cc.test('a'));
}

TEST(Parser, SingleCharIsCharSet) {
  EXPECT_EQ(parse_root("a")->kind, NodeKind::CharSet);
}

TEST(Parser, Alternation) {
  const NodePtr n = parse_root("ab|cd|ef");
  ASSERT_EQ(n->kind, NodeKind::Alternate);
  EXPECT_EQ(n->children.size(), 3u);
}

TEST(Parser, QuantifierKinds) {
  EXPECT_EQ(parse_root("a*")->kind, NodeKind::Star);
  EXPECT_EQ(parse_root("a+")->kind, NodeKind::Plus);
  EXPECT_EQ(parse_root("a?")->kind, NodeKind::Optional);
  EXPECT_EQ(parse_root("a{2,5}")->kind, NodeKind::Repeat);
}

TEST(Parser, CountedRepeatBounds) {
  const NodePtr n = parse_root("a{3,7}");
  EXPECT_EQ(n->rep_min, 3);
  EXPECT_EQ(n->rep_max, 7);
  const NodePtr exact = parse_root("(ab){4}");
  EXPECT_EQ(exact->rep_min, 4);
  EXPECT_EQ(exact->rep_max, 4);
  const NodePtr open = parse_root("a{2,}");
  EXPECT_EQ(open->rep_min, 2);
  EXPECT_EQ(open->rep_max, -1);
}

TEST(Parser, BraceWithoutDigitsIsLiteral) {
  // "{x}" is not a quantifier; it is three literal characters.
  const NodePtr n = parse_root("a{x}");
  ASSERT_EQ(n->kind, NodeKind::Concat);
  EXPECT_EQ(n->children.size(), 4u);
}

TEST(Parser, AnchorDetected) {
  EXPECT_TRUE(parse_or_die("^abc").anchored);
  EXPECT_FALSE(parse_or_die("abc").anchored);
}

TEST(Parser, GroupingAndNonCapturing) {
  const NodePtr a = parse_root("(ab)+");
  EXPECT_EQ(a->kind, NodeKind::Plus);
  const NodePtr b = parse_root("(?:ab)+");
  EXPECT_EQ(b->kind, NodeKind::Plus);
}

TEST(Parser, ClassBasics) {
  const NodePtr n = parse_root("[a-cx]");
  ASSERT_EQ(n->kind, NodeKind::CharSet);
  EXPECT_TRUE(n->cc.test('a'));
  EXPECT_TRUE(n->cc.test('b'));
  EXPECT_TRUE(n->cc.test('x'));
  EXPECT_FALSE(n->cc.test('d'));
}

TEST(Parser, NegatedClass) {
  const NodePtr n = parse_root("[^\\r\\n]");
  EXPECT_FALSE(n->cc.test('\r'));
  EXPECT_FALSE(n->cc.test('\n'));
  EXPECT_TRUE(n->cc.test('a'));
  EXPECT_EQ(n->cc.count(), 254u);
}

TEST(Parser, ClassLeadingBracketLiteral) {
  const NodePtr n = parse_root("[]a]");
  EXPECT_TRUE(n->cc.test(']'));
  EXPECT_TRUE(n->cc.test('a'));
  EXPECT_EQ(n->cc.count(), 2u);
}

TEST(Parser, ClassTrailingDashLiteral) {
  const NodePtr n = parse_root("[a-]");
  EXPECT_TRUE(n->cc.test('a'));
  EXPECT_TRUE(n->cc.test('-'));
}

TEST(Parser, ClassEscapesInside) {
  const NodePtr n = parse_root("[\\d\\.]");
  EXPECT_TRUE(n->cc.test('5'));
  EXPECT_TRUE(n->cc.test('.'));
  EXPECT_FALSE(n->cc.test('a'));
}

TEST(Parser, EscapeShorthands) {
  EXPECT_TRUE(parse_root("\\d")->cc.test('7'));
  EXPECT_FALSE(parse_root("\\D")->cc.test('7'));
  EXPECT_TRUE(parse_root("\\w")->cc.test('_'));
  EXPECT_TRUE(parse_root("\\s")->cc.test(' '));
  EXPECT_TRUE(parse_root("\\xff")->cc.test(0xff));
  EXPECT_TRUE(parse_root("\\x41")->cc.test('A'));
  EXPECT_TRUE(parse_root("\\n")->cc.test('\n'));
  EXPECT_TRUE(parse_root("\\0")->cc.test('\0'));
}

TEST(Parser, DotIsAnyByteByDefault) {
  // DPI convention: '.' covers every payload byte (see ParseOptions).
  EXPECT_TRUE(parse_root(".")->cc.is_all());
  ParseOptions pcre;
  pcre.dotall = false;
  const ParseResult r = parse(".", pcre);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.regex->root->cc.test('\n'));
}

TEST(Parser, SlashWrappingWithFlags) {
  const Regex re = parse_or_die("/abc/i");
  EXPECT_TRUE(re.root->children[0]->cc.test('A'));
  EXPECT_TRUE(re.root->children[0]->cc.test('a'));
  const Regex dotall = parse_or_die("/./s");
  EXPECT_TRUE(dotall.root->cc.test('\n'));
}

TEST(Parser, LazyQuantifierIgnored) {
  const NodePtr n = parse_root("ab*?c");
  ASSERT_EQ(n->kind, NodeKind::Concat);
  EXPECT_EQ(n->children[1]->kind, NodeKind::Star);
}

TEST(Parser, ErrorsReported) {
  EXPECT_FALSE(parse("a(b").ok());
  EXPECT_FALSE(parse("a)b").ok());
  EXPECT_FALSE(parse("[abc").ok());
  EXPECT_FALSE(parse("*a").ok());
  EXPECT_FALSE(parse("a\\").ok());
  EXPECT_FALSE(parse("a$").ok());
  EXPECT_FALSE(parse("a^b").ok());
  EXPECT_FALSE(parse("a{5,2}").ok());
  EXPECT_FALSE(parse("/a/q").ok());
  EXPECT_FALSE(parse("\\xg1").ok());
  EXPECT_FALSE(parse("(?=a)").ok());
}

TEST(Parser, ErrorHasOffset) {
  const ParseResult r = parse("ab(cd");
  ASSERT_FALSE(r.ok());
  EXPECT_GE(r.error->offset, 2u);
}

TEST(Parser, CountedRepeatCap) {
  ParseOptions opts;
  opts.max_counted_repeat = 16;
  EXPECT_FALSE(parse("a{17}", opts).ok());
  EXPECT_TRUE(parse("a{16}", opts).ok());
}

TEST(Parser, EmptyAlternateBranchAllowed) {
  // "(a|)" has an empty branch: matches "a" or "".
  const ParseResult r = parse("(a|)b");
  EXPECT_TRUE(r.ok());
}

TEST(Parser, NestedGroups) {
  const NodePtr n = parse_root("((a|b)c)+d");
  ASSERT_EQ(n->kind, NodeKind::Concat);
  EXPECT_EQ(n->children[0]->kind, NodeKind::Plus);
}

}  // namespace
}  // namespace mfa::regex

namespace mfa::regex {
namespace {

TEST(ParserPosix, NamedClasses) {
  EXPECT_TRUE(parse_or_die("[[:digit:]]").root->cc.test('5'));
  EXPECT_FALSE(parse_or_die("[[:digit:]]").root->cc.test('a'));
  EXPECT_TRUE(parse_or_die("[[:alpha:]]").root->cc.test('Q'));
  EXPECT_TRUE(parse_or_die("[[:alnum:]]").root->cc.test('7'));
  EXPECT_TRUE(parse_or_die("[[:space:]]").root->cc.test('\t'));
  EXPECT_TRUE(parse_or_die("[[:xdigit:]]").root->cc.test('F'));
  EXPECT_TRUE(parse_or_die("[[:punct:]]").root->cc.test(';'));
  EXPECT_FALSE(parse_or_die("[[:punct:]]").root->cc.test('a'));
  EXPECT_TRUE(parse_or_die("[[:blank:]]").root->cc.test(' '));
  EXPECT_TRUE(parse_or_die("[[:cntrl:]]").root->cc.test(0x7f));
}

TEST(ParserPosix, CombinesWithOtherItems) {
  const NodePtr n = parse_or_die("[[:digit:]a-c]").root;
  EXPECT_TRUE(n->cc.test('3'));
  EXPECT_TRUE(n->cc.test('b'));
  EXPECT_FALSE(n->cc.test('z'));
}

TEST(ParserPosix, NegatedPosixClass) {
  const NodePtr n = parse_or_die("[^[:digit:]]").root;
  EXPECT_FALSE(n->cc.test('5'));
  EXPECT_TRUE(n->cc.test('x'));
}

TEST(ParserPosix, BadNamesRejected) {
  EXPECT_FALSE(parse("[[:bogus:]]").ok());
  EXPECT_FALSE(parse("[[:alpha]]").ok());
  EXPECT_FALSE(parse("[[:alpha:").ok());
}

TEST(ParserPosix, PlainBracketStillLiteralInClass) {
  // '[' not followed by ':' stays an ordinary member.
  const NodePtr n = parse_or_die("[[a]").root;
  EXPECT_TRUE(n->cc.test('['));
  EXPECT_TRUE(n->cc.test('a'));
}

}  // namespace
}  // namespace mfa::regex
