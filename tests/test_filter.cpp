#include "filter/engine.h"

#include <gtest/gtest.h>

#include "filter/action.h"
#include "util/match.h"

namespace mfa::filter {
namespace {

/// Run a sequence of (engine_id, pos) events through a program.
MatchVec run(const Program& program, const std::vector<std::pair<std::uint32_t, std::uint64_t>>& events) {
  Engine engine(program);
  Memory memory(program.counters);
  CollectingSink sink;
  for (const auto& [id, pos] : events) engine.on_match(id, pos, memory, sink);
  return sink.matches;
}

TEST(Filter, PlainReportPassesThrough) {
  Program p;
  p.actions.push_back(Action{kNone, kNone, kNone, 7});
  const MatchVec m = run(p, {{0, 3}, {0, 9}});
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m[0], (Match{7, 3}));
  EXPECT_EQ(m[1], (Match{7, 9}));
}

TEST(Filter, SetThenTestConfirms) {
  // Paper Sec. IV-A: 1a: Set 0, 1: Test 0 to Match.
  Program p;
  p.memory_bits = 1;
  p.actions.push_back(Action{kNone, 0, kNone, kNone});  // id 0 = "1a"
  p.actions.push_back(Action{0, kNone, kNone, 1});      // id 1 = "1"
  EXPECT_TRUE(run(p, {{1, 5}}).empty());                 // B before A: dropped
  const MatchVec m = run(p, {{0, 2}, {1, 5}});
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m[0], (Match{1, 5}));
}

TEST(Filter, ClearBreaksTheLink) {
  // Paper Sec. IV-B: 1a: Set 0, 1b: Clear 0, 1: Test 0 to Match.
  Program p;
  p.memory_bits = 1;
  p.actions.push_back(Action{kNone, 0, kNone, kNone});   // set
  p.actions.push_back(Action{kNone, kNone, 0, kNone});   // clear
  p.actions.push_back(Action{0, kNone, kNone, 1});       // test->match
  EXPECT_TRUE(run(p, {{0, 1}, {1, 2}, {2, 3}}).empty());
  EXPECT_EQ(run(p, {{0, 1}, {2, 3}}).size(), 1u);
  EXPECT_EQ(run(p, {{1, 0}, {0, 1}, {2, 3}}).size(), 1u);
}

TEST(Filter, ChainedGuards) {
  // 1a: Set 0; 1b: Test 0 to Set 1; 1: Test 1 to Match (paper Sec. IV-A).
  Program p;
  p.memory_bits = 2;
  p.actions.push_back(Action{kNone, 0, kNone, kNone});
  p.actions.push_back(Action{0, 1, kNone, kNone});
  p.actions.push_back(Action{1, kNone, kNone, 1});
  EXPECT_TRUE(run(p, {{1, 0}, {2, 1}}).empty());          // B,C without A
  EXPECT_TRUE(run(p, {{0, 0}, {2, 1}}).empty());          // A,C without B
  EXPECT_TRUE(run(p, {{1, 0}, {0, 1}, {2, 2}}).empty());  // B before A
  EXPECT_EQ(run(p, {{0, 0}, {1, 1}, {2, 2}}).size(), 1u);
}

TEST(Filter, TestGuardBlocksEffects) {
  // A guarded set must not fire when the guard bit is clear.
  Program p;
  p.memory_bits = 2;
  p.actions.push_back(Action{0, 1, kNone, kNone});  // test 0 -> set 1
  p.actions.push_back(Action{1, kNone, kNone, 9});  // test 1 -> match
  EXPECT_TRUE(run(p, {{0, 0}, {1, 1}}).empty());
}

TEST(Filter, MemoryResetsToZero) {
  Memory m;
  m.set_bit(3);
  EXPECT_TRUE(m.test_bit(3));
  m.reset();
  EXPECT_FALSE(m.test_bit(3));
}

TEST(Filter, MemoryBitsIndependent) {
  Memory m;
  for (int i = 0; i < 256; i += 7) m.set_bit(i);
  for (int i = 0; i < 256; ++i) EXPECT_EQ(m.test_bit(i), i % 7 == 0) << i;
  m.clear_bit(0);
  EXPECT_FALSE(m.test_bit(0));
  EXPECT_TRUE(m.test_bit(7));
}

TEST(Filter, CounterExtension) {
  // Counting filter (paper Sec. VI): report only after 3 increments.
  Program p;
  p.counters = 1;
  p.actions.push_back(Action{kNone, kNone, kNone, kNone, kNone, 0, 0});  // incr ctr 0
  Action gate;
  gate.ctr_test = 0;
  gate.ctr_threshold = 3;
  gate.report = 5;
  p.actions.push_back(gate);
  EXPECT_TRUE(run(p, {{0, 0}, {0, 1}, {1, 2}}).empty());  // only 2 increments
  const MatchVec m = run(p, {{0, 0}, {0, 1}, {0, 2}, {1, 3}});
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m[0], (Match{5, 3}));
}

TEST(Filter, ActionOrderComparator) {
  std::vector<Action> actions(3);
  actions[0].order = 4;  // first segment (setter): runs last
  actions[1].order = 2;  // middle segment
  actions[2].order = 0;  // final segment (reporter): runs first
  const ActionOrderLess less{&actions};
  EXPECT_TRUE(less(2, 1));
  EXPECT_TRUE(less(1, 0));
  EXPECT_FALSE(less(0, 2));
  // Equal orders tie-break by engine id, deterministically.
  actions[0].order = actions[1].order = 0;
  EXPECT_TRUE(less(0, 1));
  EXPECT_FALSE(less(1, 0));
}

TEST(Filter, PseudocodeRendering) {
  Action a;
  a.set = 0;
  EXPECT_EQ(a.to_pseudocode(), "Set 0");
  Action b;
  b.test = 0;
  b.report = 1;
  EXPECT_EQ(b.to_pseudocode(), "Test 0 to Match 1");
  Action c;
  c.test = 0;
  c.set = 1;
  EXPECT_EQ(c.to_pseudocode(), "Test 0 to Set 1");
  Action d;
  d.clear = 2;
  EXPECT_EQ(d.to_pseudocode(), "Clear 2");
}

TEST(Filter, ContextBytesAccounting) {
  EXPECT_EQ(Memory::context_bytes(1, 0), 8u);
  EXPECT_EQ(Memory::context_bytes(64, 0), 8u);
  EXPECT_EQ(Memory::context_bytes(65, 0), 16u);
  EXPECT_EQ(Memory::context_bytes(0, 2), 8u);
}

TEST(Filter, ProgramImageBytes) {
  Program p;
  p.actions.resize(10);
  EXPECT_EQ(p.memory_image_bytes(), 10 * sizeof(Action));
}

TEST(Filter, IsPlainReport) {
  Action a;
  a.report = 3;
  EXPECT_TRUE(a.is_plain_report());
  a.test = 0;
  EXPECT_FALSE(a.is_plain_report());
}

TEST(FilterValidate, AcceptsProgramWithinGeometry) {
  Program p;
  p.memory_bits = 2;
  p.counters = 1;
  p.position_slots = 1;
  Action a;
  a.test = 0;
  a.set = 1;
  a.ctr_incr = 0;
  a.set_slot = 0;
  p.actions.push_back(a);
  std::string err;
  EXPECT_TRUE(p.validate(&err)) << err;
  EXPECT_TRUE(err.empty());
}

TEST(FilterValidate, RejectsMemoryBitsBeyondCap) {
  Program p;
  p.memory_bits = kMaxMemoryBits + 1;
  std::string err;
  EXPECT_FALSE(p.validate(&err));
  EXPECT_NE(err.find("memory bits"), std::string::npos);
  // Exactly at the cap is fine.
  p.memory_bits = kMaxMemoryBits;
  EXPECT_TRUE(p.validate());
}

TEST(FilterValidate, RejectsOutOfRangeBitOperands) {
  Program p;
  p.memory_bits = 4;
  Action a;
  a.set = 4;  // bits are 0..3
  p.actions.push_back(a);
  EXPECT_FALSE(p.validate());
  p.actions[0] = Action{};
  p.actions[0].test = 7;
  EXPECT_FALSE(p.validate());
  p.actions[0] = Action{};
  p.actions[0].clear = -2;  // any negative other than kNone is invalid
  EXPECT_FALSE(p.validate());
}

TEST(FilterValidate, RejectsOutOfRangeCountersAndSlots) {
  Program p;
  p.memory_bits = 1;
  p.counters = 1;
  p.position_slots = 1;
  Action a;
  a.ctr_incr = 1;  // counters are 0..0
  p.actions.push_back(a);
  EXPECT_FALSE(p.validate());
  p.actions[0] = Action{};
  p.actions[0].ctr_test = 3;
  EXPECT_FALSE(p.validate());
  p.actions[0] = Action{};
  p.actions[0].set_slot = 1;  // slots are 0..0
  EXPECT_FALSE(p.validate());
  p.actions[0] = Action{};
  p.actions[0].test_slot = 9;
  EXPECT_FALSE(p.validate());
}

}  // namespace
}  // namespace mfa::filter
