#include "split/splitter.h"

#include <gtest/gtest.h>

#include "engine_test_util.h"
#include "regex/parser.h"

namespace mfa::split {
namespace {

using filter::kNone;
using mfa::testing::compile_patterns;

SplitResult split(const std::vector<std::string>& sources, Options opts = {}) {
  return split_patterns(compile_patterns(sources), opts);
}

TEST(OverlapCheck, SuffixPrefixOverlapDetected) {
  // Paper Sec. IV-A example: abc / bcd overlap on "bc".
  EXPECT_TRUE(segments_overlap(regex::parse_or_die("abc").root,
                               regex::parse_or_die("bcd").root));
}

TEST(OverlapCheck, DisjointStringsDoNotOverlap) {
  EXPECT_FALSE(segments_overlap(regex::parse_or_die("abc").root,
                                regex::parse_or_die("xyz").root));
  EXPECT_FALSE(segments_overlap(regex::parse_or_die("vi").root,
                                regex::parse_or_die("emacs").root));
}

TEST(OverlapCheck, WholeWordPrefixDetected) {
  // A's full word is a proper prefix of B: .*abc.*abcd falsely matches on
  // "abcd" if split.
  EXPECT_TRUE(segments_overlap(regex::parse_or_die("abc").root,
                               regex::parse_or_die("abcd").root));
}

TEST(OverlapCheck, FactorContainmentDetected) {
  // The paper's literal condition misses this: A=ab occurs inside B=cabd
  // ending before B's final position; input "cabd" would falsely match.
  EXPECT_TRUE(segments_overlap(regex::parse_or_die("ab").root,
                               regex::parse_or_die("cabd").root));
}

TEST(OverlapCheck, FactorAtFinalPositionIsAllowed) {
  // A=bc inside B=abc *at the final position* is handled by the
  // tests-before-sets action order, not the overlap check.
  EXPECT_FALSE(segments_overlap(regex::parse_or_die("bc").root,
                                regex::parse_or_die("abc").root));
}

TEST(OverlapCheck, RegexSegments) {
  EXPECT_TRUE(segments_overlap(regex::parse_or_die("a[bx]").root,
                               regex::parse_or_die("(x|q)z").root));  // suffix x
  EXPECT_FALSE(segments_overlap(regex::parse_or_die("a[bc]").root,
                                regex::parse_or_die("[xy]z").root));
}

TEST(OverlapCheck, BudgetExhaustionIsConservative) {
  EXPECT_TRUE(segments_overlap(regex::parse_or_die("a(b|c)(d|e)(f|g)").root,
                               regex::parse_or_die("h(i|j)(k|l)m").root, /*limit=*/2));
}

TEST(Splitter, DotStarSplitsIntoTwoPieces) {
  const SplitResult r = split({".*abc.*xyz"});
  ASSERT_EQ(r.pieces.size(), 2u);
  EXPECT_EQ(r.stats.dot_star_splits, 1u);
  EXPECT_EQ(r.program.memory_bits, 1u);
  // Piece 0: set bit 0; piece 1: test bit 0, report original id 1.
  EXPECT_EQ(r.program.actions[0].set, 0);
  EXPECT_EQ(r.program.actions[0].report, kNone);
  EXPECT_EQ(r.program.actions[1].test, 0);
  EXPECT_EQ(r.program.actions[1].report, 1);
}

TEST(Splitter, TwoDotStarsChainGuards) {
  const SplitResult r = split({".*abc.*lmn.*xyz"});
  ASSERT_EQ(r.pieces.size(), 3u);
  EXPECT_EQ(r.program.memory_bits, 2u);
  // 1a: Set 0; 1b: Test 0 to Set 1; 1: Test 1 to Match (paper Sec. IV-A).
  EXPECT_EQ(r.program.actions[0].set, 0);
  EXPECT_EQ(r.program.actions[0].test, kNone);
  EXPECT_EQ(r.program.actions[1].test, 0);
  EXPECT_EQ(r.program.actions[1].set, 1);
  EXPECT_EQ(r.program.actions[2].test, 1);
  EXPECT_EQ(r.program.actions[2].report, 1);
}

TEST(Splitter, AlmostDotStarEmitsClearPiece) {
  const SplitResult r = split({".*abc[^\\r\\n]*xyz"});
  ASSERT_EQ(r.pieces.size(), 3u);
  EXPECT_EQ(r.stats.almost_dot_star_splits, 1u);
  // set / clear / test-match.
  EXPECT_EQ(r.program.actions[0].set, 0);
  EXPECT_EQ(r.program.actions[1].clear, 0);
  EXPECT_EQ(r.program.actions[1].test, kNone);
  EXPECT_EQ(r.program.actions[2].test, 0);
  EXPECT_EQ(r.program.actions[2].report, 1);
  // The clear piece matches the class X itself (paper: ".*[X]{{1b}}").
  EXPECT_EQ(r.pieces[1].regex.root->kind, regex::NodeKind::CharSet);
  EXPECT_TRUE(r.pieces[1].regex.root->cc.test('\n'));
  EXPECT_TRUE(r.pieces[1].regex.root->cc.test('\r'));
  EXPECT_EQ(r.pieces[1].regex.root->cc.count(), 2u);
}

TEST(Splitter, PcreDotStarBecomesAlmostDotStar) {
  // Under PCRE semantics (dotall off) `.` excludes newline, so A.*B is
  // really A[^\n]*B and decomposes as almost-dot-star with X = {\n}.
  regex::ParseOptions pcre;
  pcre.dotall = false;
  std::vector<nfa::PatternInput> pats;
  pats.push_back(nfa::PatternInput{regex::parse_or_die("abc.*xyz", pcre), 1});
  const SplitResult r = split_patterns(pats);
  ASSERT_EQ(r.pieces.size(), 3u);
  EXPECT_TRUE(r.pieces[1].regex.root->cc.test('\n'));
  EXPECT_EQ(r.pieces[1].regex.root->cc.count(), 1u);
}

TEST(Splitter, OverlapRejectionFoldsBoundary) {
  const SplitResult r = split({".*abc.*bcd"});
  EXPECT_EQ(r.pieces.size(), 1u);
  EXPECT_EQ(r.stats.boundaries_rejected, 1u);
  EXPECT_EQ(r.program.actions[0].report, 1);
  EXPECT_EQ(r.program.actions[0].test, kNone);
}

TEST(Splitter, PartialSplitAroundBadBoundary) {
  // First boundary (abc/bcd) must fold, second (bcd../xyz) can split.
  const SplitResult r = split({".*abc.*bcd.*xyz"});
  ASSERT_EQ(r.pieces.size(), 2u);
  EXPECT_EQ(r.stats.boundaries_rejected, 1u);
  EXPECT_EQ(r.stats.dot_star_splits, 1u);
}

TEST(Splitter, AlmostDotStarXInBRejected) {
  // X = {'y'} appears in B: must not split (Sec. IV-B).
  const SplitResult r = split({".*abc[^y]*xyz"});
  EXPECT_EQ(r.pieces.size(), 1u);
  EXPECT_GE(r.stats.boundaries_rejected, 1u);
}

TEST(Splitter, AlmostDotStarXAtEndOfARejected) {
  // X = {'c'} is the final char of A: must not split (Sec. IV-B).
  const SplitResult r = split({".*abc[^c]*xyz"});
  EXPECT_EQ(r.pieces.size(), 1u);
}

TEST(Splitter, AlmostDotStarXInsideANotFinalAllowed) {
  // X = {'b'} occurs in A but not finally: split allowed (Sec. IV-B).
  const SplitResult r = split({".*abc[^b]*xyz"});
  EXPECT_EQ(r.pieces.size(), 3u);
}

TEST(Splitter, LargeClassThresholdBlocksSplit) {
  // [a-f]* leaves X = everything but a-f (250 chars >= 128): no split
  // (the paper's throughput guard, Sec. IV-B).
  const SplitResult r = split({".*abc[a-f]*xyz"});
  EXPECT_EQ(r.pieces.size(), 1u);
}

TEST(Splitter, NullableSegmentNotSplit) {
  const SplitResult r = split({".*abc.*(xyz)?"});
  EXPECT_EQ(r.pieces.size(), 1u);
}

TEST(Splitter, PlainStringPassesThrough) {
  const SplitResult r = split({".*justastring"});
  ASSERT_EQ(r.pieces.size(), 1u);
  EXPECT_TRUE(r.program.actions[0].is_plain_report());
  EXPECT_EQ(r.stats.patterns_decomposed, 0u);
}

TEST(Splitter, AnchoredFirstPieceKeepsAnchor) {
  const SplitResult r = split({"^GET .*passwd"});
  ASSERT_EQ(r.pieces.size(), 2u);  // ^GET<sp> sets, passwd tests+reports
  EXPECT_TRUE(r.pieces[0].regex.anchored);
  EXPECT_FALSE(r.pieces[1].regex.anchored);
  EXPECT_EQ(r.program.actions[1].report, 1);
}

TEST(Splitter, MultiplePatternsGetDistinctBits) {
  const SplitResult r = split({".*aaa.*bbb", ".*ccc.*ddd"});
  ASSERT_EQ(r.pieces.size(), 4u);
  EXPECT_EQ(r.program.memory_bits, 2u);
  EXPECT_NE(r.program.actions[0].set, r.program.actions[2].set);
  EXPECT_EQ(r.program.actions[1].report, 1);
  EXPECT_EQ(r.program.actions[3].report, 2);
}

TEST(Splitter, AblationDisableDotStar) {
  Options opts;
  opts.enable_dot_star = false;
  const SplitResult r = split({".*abc.*xyz"}, opts);
  EXPECT_EQ(r.pieces.size(), 1u);
  EXPECT_EQ(r.stats.dot_star_splits, 0u);
}

TEST(Splitter, AblationDisableAlmostDotStar) {
  Options opts;
  opts.enable_almost_dot_star = false;
  const SplitResult r = split({".*abc[^\\r\\n]*xyz"}, opts);
  EXPECT_EQ(r.pieces.size(), 1u);
}

TEST(Splitter, LeadingSeparatorDropped) {
  // ".*abc" has a leading dot-star only; piece count 1, no bits.
  const SplitResult r = split({".*abc"});
  EXPECT_EQ(r.pieces.size(), 1u);
  EXPECT_EQ(r.program.memory_bits, 0u);
}

TEST(Splitter, TrailingSeparatorBlocksItsBoundary) {
  // `.*abc.*xyz.*` reports at *every* position after the first abc..xyz.
  // The trailing separator folds into the final segment (B = xyz.*), and
  // the overlap check then correctly rejects the boundary: B's words absorb
  // arbitrary suffixes, so an abc occurring after xyz would falsely match
  // at the next byte. The pattern stays whole; correctness over compression.
  const SplitResult r = split({".*abc.*xyz.*"});
  EXPECT_EQ(r.pieces.size(), 1u);
  EXPECT_GE(r.stats.boundaries_rejected, 1u);
}

TEST(Splitter, TrailingSeparatorContaminatesLeftward) {
  // Once lmn|xyz.* folds, the effective B for the abc boundary becomes
  // lmn.*xyz.* whose words can contain abc, so the fixpoint re-validation
  // folds that boundary too. Trailing separators therefore block the whole
  // chain — conservative but required for correctness.
  const SplitResult r = split({".*abc.*lmn.*xyz.*"});
  EXPECT_EQ(r.pieces.size(), 1u);
  EXPECT_GE(r.stats.boundaries_rejected, 2u);
}

TEST(Splitter, StatsTallyPatterns) {
  const SplitResult r = split({".*a1b2.*c3d4", ".*plainword", ".*q9w8[^\\r\\n]*e7r6"});
  EXPECT_EQ(r.stats.patterns_in, 3u);
  EXPECT_EQ(r.stats.patterns_decomposed, 2u);
}

}  // namespace
}  // namespace mfa::split
