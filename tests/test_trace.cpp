#include "trace/trace.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "engine_test_util.h"

namespace mfa::trace {
namespace {

using mfa::testing::compile_patterns;

TEST(Trace, AddAndReadBack) {
  Trace t("demo");
  const flow::FlowKey key{1, 2, 3, 4, 6};
  t.add_packet(key, 0, "hello");
  t.add_packet(key, 5, " world");
  EXPECT_EQ(t.packet_count(), 2u);
  EXPECT_EQ(t.payload_bytes(), 11u);
  const flow::Packet p0 = t.packet(0);
  EXPECT_EQ(p0.length, 5u);
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(p0.payload), p0.length), "hello");
  EXPECT_EQ(t.packet(1).seq, 5u);
}

TEST(Trace, SaveLoadRoundTrip) {
  Trace t("roundtrip");
  const flow::FlowKey a{1, 2, 3, 4, 6};
  const flow::FlowKey b{9, 8, 7, 6, 17};
  t.add_packet(a, 0, "first");
  t.add_packet(b, 0, std::string("\x00\x01\xff", 3));
  t.add_packet(a, 5, "second");
  const std::string path = ::testing::TempDir() + "/mfa_trace_test.mftr";
  ASSERT_TRUE(t.save(path));
  Trace loaded;
  ASSERT_TRUE(Trace::load(path, loaded));
  EXPECT_EQ(loaded.name(), "roundtrip");
  ASSERT_EQ(loaded.packet_count(), 3u);
  EXPECT_EQ(loaded.payload_bytes(), t.payload_bytes());
  const flow::Packet p1 = loaded.packet(1);
  EXPECT_EQ(p1.key, b);
  EXPECT_EQ(p1.length, 3u);
  EXPECT_EQ(p1.payload[2], 0xff);
  std::remove(path.c_str());
}

TEST(Trace, LoadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/mfa_trace_garbage.mftr";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a trace file at all", f);
  std::fclose(f);
  Trace t;
  EXPECT_FALSE(Trace::load(path, t));
  EXPECT_FALSE(Trace::load(path + ".does_not_exist", t));
  std::remove(path.c_str());
}

TEST(SyntheticTrace, SizesAndDeterminism) {
  const auto inputs = compile_patterns({".*attack1.*vector2", ".*worm99"});
  const auto d = dfa::build_dfa(nfa::build_nfa(inputs));
  ASSERT_TRUE(d.has_value());
  const Trace t1 = make_synthetic(*d, 0.5, 20000, /*seed=*/1);
  const Trace t2 = make_synthetic(*d, 0.5, 20000, /*seed=*/1);
  const Trace t3 = make_synthetic(*d, 0.5, 20000, /*seed=*/2);
  EXPECT_EQ(t1.payload_bytes(), 20000u);
  EXPECT_GT(t1.packet_count(), 10u);
  // Determinism: same seed -> identical bytes; different seed -> different.
  bool same12 = t1.packet_count() == t2.packet_count();
  bool diff13 = false;
  for (std::size_t i = 0; same12 && i < t1.packet_count(); ++i) {
    const auto p1 = t1.packet(i);
    const auto p2 = t2.packet(i);
    same12 = p1.length == p2.length &&
             std::equal(p1.payload, p1.payload + p1.length, p2.payload);
  }
  const auto p1 = t1.packet(0);
  const auto p3 = t3.packet(0);
  diff13 = !std::equal(p1.payload, p1.payload + std::min(p1.length, p3.length), p3.payload);
  EXPECT_TRUE(same12);
  EXPECT_TRUE(diff13);
}

TEST(SyntheticTrace, HigherPmYieldsMoreMatches) {
  // The whole point of the p_M knob (paper Fig. 5): more malicious traffic
  // means more match events to process.
  const auto inputs = compile_patterns({".*evil01.*evil02", ".*bad33[^\\n]*bad44"});
  const auto d = dfa::build_dfa(nfa::build_nfa(inputs));
  ASSERT_TRUE(d.has_value());
  std::uint64_t prev = 0;
  bool nondecreasing = true;
  std::uint64_t low_pm_matches = 0;
  std::uint64_t high_pm_matches = 0;
  for (const double pm : {0.0, 0.55, 0.95}) {
    const Trace t = make_synthetic(*d, pm, 60000, 7);
    dfa::DfaScanner s(*d);
    CountingSink sink;
    t.for_each_packet([&](const flow::Packet& p) {
      s.feed(p.payload, p.length, p.seq, sink);
    });
    if (pm == 0.0) low_pm_matches = sink.count;
    if (pm == 0.95) high_pm_matches = sink.count;
    nondecreasing = nondecreasing && sink.count >= prev;
    prev = sink.count;
  }
  EXPECT_TRUE(nondecreasing);
  EXPECT_GT(high_pm_matches, low_pm_matches);
}

TEST(RealLifeTrace, ProfilesProduceMultiplexedFlows) {
  for (const auto profile : {RealLifeProfile::kDarpa, RealLifeProfile::kCyberDefense,
                             RealLifeProfile::kNitroba}) {
    const Trace t = make_real_life(profile, 50000, 3, {});
    EXPECT_GE(t.payload_bytes(), 50000u);
    EXPECT_GT(t.packet_count(), 30u);
    // Multiple flows must be interleaved.
    std::vector<flow::FlowKey> keys;
    t.for_each_packet([&](const flow::Packet& p) { keys.push_back(p.key); });
    bool interleaved = false;
    for (std::size_t i = 2; i < keys.size() && !interleaved; ++i)
      interleaved = !(keys[i] == keys[i - 1]) && !(keys[i - 1] == keys[i - 2]);
    EXPECT_TRUE(interleaved);
  }
}

TEST(RealLifeTrace, AttackExemplarsProduceMatches) {
  const std::vector<std::string> pats = {".*maliciouscmd.*rootshell"};
  const auto inputs = compile_patterns(pats);
  const auto d = dfa::build_dfa(nfa::build_nfa(inputs));
  ASSERT_TRUE(d.has_value());
  // Exemplar = a full sampled match of the pattern.
  const Trace t = make_real_life(RealLifeProfile::kCyberDefense, 200000, 11,
                                 {"maliciouscmd 1337 rootshell"});
  flow::FlowInspector<dfa::Dfa> insp{*d};
  CountingSink sink;
  t.for_each_packet([&](const flow::Packet& p) { insp.packet(p, sink); });
  EXPECT_GT(sink.count, 0u);
}

TEST(RealLifeTrace, SequencingWithinFlowsIsContiguous) {
  const Trace t = make_real_life(RealLifeProfile::kNitroba, 30000, 5, {});
  std::unordered_map<flow::FlowKey, std::uint64_t, flow::FlowKeyHash> next;
  t.for_each_packet([&](const flow::Packet& p) {
    const auto it = next.find(p.key);
    const std::uint64_t expect = it == next.end() ? 0 : it->second;
    EXPECT_EQ(p.seq, expect);
    next[p.key] = p.seq + p.length;
  });
}

}  // namespace
}  // namespace mfa::trace
