// Telemetry layer: histogram bucket boundaries and merge, trace-ring
// overwrite semantics, FlowInspector instrumentation, Prometheus/JSON
// exporter golden output (and that both render the same snapshot), and the
// periodic stats writer.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>

#include "engine_test_util.h"
#include "flow/flow.h"
#include "flow/tiered.h"
#include "obs/export.h"
#include "obs/profile.h"
#include "obs/stats_writer.h"
#include "pipeline/pipeline.h"
#include "trace/trace.h"

namespace mfa::obs {
namespace {

using mfa::testing::compile_patterns;

// --- Histogram ---

TEST(Histogram, BucketIndexBoundaries) {
  // Bucket i holds values of bit width i: 0 | 1 | 2-3 | 4-7 | 8-15 | ...
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 1u);
  EXPECT_EQ(Histogram::bucket_index(2), 2u);
  EXPECT_EQ(Histogram::bucket_index(3), 2u);
  EXPECT_EQ(Histogram::bucket_index(4), 3u);
  EXPECT_EQ(Histogram::bucket_index(7), 3u);
  EXPECT_EQ(Histogram::bucket_index(8), 4u);
  EXPECT_EQ(Histogram::bucket_index(1023), 10u);
  EXPECT_EQ(Histogram::bucket_index(1024), 11u);
  EXPECT_EQ(Histogram::bucket_index(~std::uint64_t{0}), kHistogramBuckets - 1);
}

TEST(Histogram, BucketUpperBounds) {
  EXPECT_EQ(Histogram::bucket_upper_bound(0), 0u);
  EXPECT_EQ(Histogram::bucket_upper_bound(1), 1u);
  EXPECT_EQ(Histogram::bucket_upper_bound(2), 3u);
  EXPECT_EQ(Histogram::bucket_upper_bound(3), 7u);
  EXPECT_EQ(Histogram::bucket_upper_bound(10), 1023u);
  EXPECT_EQ(Histogram::bucket_upper_bound(kHistogramBuckets - 1), ~std::uint64_t{0});
  // Every value lands in the bucket whose bounds contain it.
  for (std::uint64_t v : {0ull, 1ull, 2ull, 5ull, 100ull, 65535ull, 1ull << 30}) {
    const std::size_t b = Histogram::bucket_index(v);
    EXPECT_LE(v, Histogram::bucket_upper_bound(b)) << v;
    if (b > 0) {
      EXPECT_GT(v, Histogram::bucket_upper_bound(b - 1)) << v;
    }
  }
}

TEST(Histogram, RecordSnapshotAndMerge) {
  Histogram h;
  h.record(0);
  h.record(3);
  h.record(3);
  h.record(100);
  HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum, 106u);
  EXPECT_EQ(s.counts[0], 1u);
  EXPECT_EQ(s.counts[2], 2u);
  EXPECT_EQ(s.counts[7], 1u);  // 100 has bit width 7
  EXPECT_DOUBLE_EQ(s.mean(), 106.0 / 4.0);
  EXPECT_EQ(s.max_bucket(), 7u);

  Histogram h2;
  h2.record(1 << 20);
  s += h2.snapshot();
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.sum, 106u + (1u << 20));
  EXPECT_EQ(s.counts[21], 1u);
  EXPECT_EQ(s.max_bucket(), 21u);
}

TEST(Histogram, QuantileIsLogGranular) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.record(10);    // bucket 4, upper bound 15
  for (int i = 0; i < 10; ++i) h.record(1000);  // bucket 10, upper bound 1023
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.quantile(0.5), 15u);
  EXPECT_EQ(s.quantile(0.99), 1023u);
  EXPECT_EQ(HistogramSnapshot{}.quantile(0.5), 0u);
}

// --- MatchTraceRing ---

TEST(MatchTraceRing, OverwritesOldestKeepsNewest) {
  MatchTraceRing ring(8);
  EXPECT_EQ(ring.capacity(), 8u);
  for (std::uint32_t i = 0; i < 20; ++i)
    ring.record(i, 2 * i, 10, 20, 6, /*match_id=*/i, /*offset=*/100 + i, /*tsc=*/i);
  EXPECT_EQ(ring.recorded(), 20u);
  const auto events = ring.drain();
  ASSERT_EQ(events.size(), 8u);
  // The newest 8 events (ids 12..19), oldest first.
  for (std::size_t k = 0; k < 8; ++k) {
    EXPECT_EQ(events[k].match_id, 12u + k);
    EXPECT_EQ(events[k].src_ip, 12u + k);
    EXPECT_EQ(events[k].dst_ip, 2 * (12u + k));
    EXPECT_EQ(events[k].src_port, 10u);
    EXPECT_EQ(events[k].dst_port, 20u);
    EXPECT_EQ(events[k].proto, 6u);
    EXPECT_EQ(events[k].offset, 112u + k);
  }
  // Draining does not consume: a second drain sees the same events.
  EXPECT_EQ(ring.drain().size(), 8u);
}

TEST(MatchTraceRing, PartiallyFilledDrainsInOrder) {
  MatchTraceRing ring(16);
  ring.record(1, 1, 1, 1, 6, 7, 50, 0);
  ring.record(2, 2, 2, 2, 17, 9, 60, 1);
  const auto events = ring.drain();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].match_id, 7u);
  EXPECT_EQ(events[1].match_id, 9u);
  EXPECT_EQ(events[1].proto, 17u);
}

TEST(MatchTraceRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MatchTraceRing(1).capacity(), 2u);
  EXPECT_EQ(MatchTraceRing(5).capacity(), 8u);
  EXPECT_EQ(MatchTraceRing(1024).capacity(), 1024u);
}

// --- MetricsRegistry ---

TEST(MetricsRegistry, SnapshotAggregatesShardsAndMatchIds) {
  MetricsRegistry reg({.shards = 2, .match_id_capacity = 16, .trace_capacity = 8});
  reg.shard(0).packets.fetch_add(3);
  reg.shard(0).bytes.fetch_add(300);
  reg.shard(1).packets.fetch_add(5);
  reg.shard(1).bytes.fetch_add(500);
  reg.shard(1).queue_full_spins.fetch_add(7);
  reg.count_match(5);
  reg.count_match(5);
  reg.count_match(99);  // beyond capacity -> overflow bucket
  const RegistrySnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.shards.size(), 2u);
  EXPECT_EQ(snap.shards[0].packets, 3u);
  EXPECT_EQ(snap.shards[1].packets, 5u);
  const ShardSnapshot t = snap.totals();
  EXPECT_EQ(t.packets, 8u);
  EXPECT_EQ(t.bytes, 800u);
  EXPECT_EQ(t.queue_full_spins, 7u);
  ASSERT_EQ(snap.match_counts.size(), 1u);
  EXPECT_EQ(snap.match_counts[0].first, 5u);
  EXPECT_EQ(snap.match_counts[0].second, 2u);
  EXPECT_EQ(snap.match_id_overflow, 1u);
  EXPECT_EQ(reg.match_count(5), 2u);
}

// --- FlowInspector instrumentation ---

TEST(FlowInspectorTelemetry, CountsPacketsMatchesAndTraceEvents) {
  auto m = core::build_mfa(compile_patterns({".*needle"}));
  ASSERT_TRUE(m.has_value());
  MetricsRegistry reg({.shards = 1, .match_id_capacity = 16, .trace_capacity = 16});
  flow::FlowInspector<core::Mfa> insp(*m);
  insp.set_metrics(&reg, 0);

  const std::string payload = "xx needle yy";
  const flow::FlowKey key{0x0a000001, 0x0a000002, 1234, 80, 6};
  CollectingSink sink;
  insp.packet(flow::Packet{key, 0,
                           reinterpret_cast<const std::uint8_t*>(payload.data()),
                           static_cast<std::uint32_t>(payload.size())},
              sink);
  // Second flow: an out-of-order segment that stays buffered.
  const flow::FlowKey key2{0x0a000003, 0x0a000004, 5, 6, 6};
  insp.packet(flow::Packet{key2, 100,
                           reinterpret_cast<const std::uint8_t*>(payload.data()),
                           static_cast<std::uint32_t>(payload.size())},
              sink);

  ASSERT_EQ(sink.matches.size(), 1u);
  const RegistrySnapshot snap = reg.snapshot();
  const ShardSnapshot& s = snap.shards.at(0);
  EXPECT_EQ(s.packets, 2u);
  EXPECT_EQ(s.bytes, 2 * payload.size());
  EXPECT_EQ(s.matches, 1u);
  EXPECT_EQ(s.flows, 2u);
  EXPECT_EQ(s.reassembly_pending_bytes, payload.size());
  EXPECT_EQ(s.scan_ns.count, 2u);
  EXPECT_EQ(s.packet_bytes.count, 2u);
  EXPECT_EQ(s.packet_bytes.sum, 2 * payload.size());

  ASSERT_EQ(snap.match_counts.size(), 1u);
  EXPECT_EQ(snap.match_counts[0].first, sink.matches[0].id);
  EXPECT_EQ(snap.match_counts[0].second, 1u);

  ASSERT_EQ(snap.trace_events.size(), 1u);
  const MatchTraceRing::Event& e = snap.trace_events[0];
  EXPECT_EQ(e.src_ip, key.src_ip);
  EXPECT_EQ(e.dst_ip, key.dst_ip);
  EXPECT_EQ(e.src_port, key.src_port);
  EXPECT_EQ(e.dst_port, key.dst_port);
  EXPECT_EQ(e.proto, key.proto);
  EXPECT_EQ(e.match_id, sink.matches[0].id);
  EXPECT_EQ(e.offset, sink.matches[0].end);
}

TEST(FlowInspectorTelemetry, DetachedInspectorTouchesNothing) {
  auto m = core::build_mfa(compile_patterns({".*needle"}));
  ASSERT_TRUE(m.has_value());
  MetricsRegistry reg(1);
  flow::FlowInspector<core::Mfa> insp(*m);  // never attached
  const std::string payload = "a needle";
  CollectingSink sink;
  insp.packet(flow::Packet{flow::FlowKey{1, 2, 3, 4, 6}, 0,
                           reinterpret_cast<const std::uint8_t*>(payload.data()),
                           static_cast<std::uint32_t>(payload.size())},
              sink);
  EXPECT_EQ(sink.matches.size(), 1u);
  EXPECT_EQ(reg.snapshot().totals().packets, 0u);
}

// --- Exporters ---

RegistrySnapshot known_snapshot() {
  MetricsRegistry reg({.shards = 1, .match_id_capacity = 16, .trace_capacity = 8});
  ShardMetrics& s = reg.shard(0);
  s.packets.fetch_add(3);
  s.bytes.fetch_add(1500);
  s.matches.fetch_add(2);
  s.flows.store(4);
  s.evictions.fetch_add(1);
  s.queue_full_spins.fetch_add(9);
  s.max_queue_depth.store(17);
  s.scan_ns.record(100);
  s.scan_ns.record(1000);
  s.packet_bytes.record(500);
  reg.count_match(7);
  reg.count_match(7);
  reg.trace().record(1, 2, 3, 4, 6, 7, 42, 5);
  return reg.snapshot();
}

TEST(Exporters, PrometheusGoldenLines) {
  const std::string out = to_prometheus(known_snapshot());
  EXPECT_NE(out.find("# TYPE mfa_packets_total counter\n"
                     "mfa_packets_total{shard=\"0\"} 3\n"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("mfa_bytes_total{shard=\"0\"} 1500\n"), std::string::npos);
  EXPECT_NE(out.find("mfa_matches_total{shard=\"0\"} 2\n"), std::string::npos);
  EXPECT_NE(out.find("# TYPE mfa_flows gauge\nmfa_flows{shard=\"0\"} 4\n"),
            std::string::npos);
  EXPECT_NE(out.find("mfa_queue_full_spins_total{shard=\"0\"} 9\n"),
            std::string::npos);
  EXPECT_NE(out.find("mfa_queue_max_depth{shard=\"0\"} 17\n"), std::string::npos);
  // Histogram: 100 -> bucket bound 127, 1000 -> bucket bound 1023; buckets
  // are cumulative and end with +Inf == count.
  EXPECT_NE(out.find("mfa_scan_ns_bucket{shard=\"0\",le=\"127\"} 1\n"),
            std::string::npos);
  EXPECT_NE(out.find("mfa_scan_ns_bucket{shard=\"0\",le=\"1023\"} 2\n"),
            std::string::npos);
  EXPECT_NE(out.find("mfa_scan_ns_bucket{shard=\"0\",le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(out.find("mfa_scan_ns_sum{shard=\"0\"} 1100\n"), std::string::npos);
  EXPECT_NE(out.find("mfa_scan_ns_count{shard=\"0\"} 2\n"), std::string::npos);
  EXPECT_NE(out.find("mfa_match_hits_total{id=\"7\"} 2\n"), std::string::npos);
  EXPECT_NE(out.find("mfa_trace_events_total 1\n"), std::string::npos);
}

TEST(Exporters, JsonGoldenFields) {
  const std::string out = to_json(known_snapshot());
  EXPECT_EQ(out.find("{\"schema\":\"mfa.telemetry.v1\""), 0u) << out;
  EXPECT_NE(out.find("\"packets\":3"), std::string::npos);
  EXPECT_NE(out.find("\"bytes\":1500"), std::string::npos);
  EXPECT_NE(out.find("\"queue_full_spins\":9"), std::string::npos);
  EXPECT_NE(out.find("\"scan_ns\":{\"count\":2,\"sum\":1100,\"buckets\":"
                     "[[127,1],[1023,1]]}"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("\"match_counts\":[[7,2]]"), std::string::npos);
  EXPECT_NE(out.find("\"trace\":{\"recorded\":1,\"events\":[{\"src_ip\":1,"
                     "\"dst_ip\":2,\"src_port\":3,\"dst_port\":4,\"proto\":6,"
                     "\"id\":7,\"offset\":42,\"tsc\":5}]}"),
            std::string::npos)
      << out;
  EXPECT_EQ(out.find('\n'), std::string::npos);  // single line (JSONL-safe)
}

TEST(Exporters, PrometheusAndJsonRenderTheSameSnapshot) {
  const RegistrySnapshot snap = known_snapshot();
  const std::string prom = to_prometheus(snap);
  const std::string json = to_json(snap);
  const ShardSnapshot t = snap.totals();
  // Every headline counter appears with the same value in both renderings.
  EXPECT_NE(prom.find("mfa_packets_total{shard=\"0\"} " + std::to_string(t.packets)),
            std::string::npos);
  EXPECT_NE(json.find("\"packets\":" + std::to_string(t.packets)), std::string::npos);
  EXPECT_NE(prom.find("mfa_bytes_total{shard=\"0\"} " + std::to_string(t.bytes)),
            std::string::npos);
  EXPECT_NE(json.find("\"bytes\":" + std::to_string(t.bytes)), std::string::npos);
  EXPECT_NE(prom.find("mfa_matches_total{shard=\"0\"} " + std::to_string(t.matches)),
            std::string::npos);
  EXPECT_NE(json.find("\"matches\":" + std::to_string(t.matches)), std::string::npos);
}

TEST(Exporters, BenchReportSchema) {
  BenchReport report("unit");
  report.add("C8", "LL1", "mfa", 49.25, 12, 4);
  report.set_telemetry(known_snapshot());
  const std::string out = report.to_json();
  EXPECT_EQ(out.find("{\"schema\":\"mfa.bench.v1\",\"bench\":\"unit\""), 0u) << out;
  EXPECT_NE(out.find("{\"set\":\"C8\",\"trace\":\"LL1\",\"engine\":\"mfa\","
                     "\"shards\":4,\"cycles_per_byte\":49.25,\"matches\":12}"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("\"telemetry\":{\"schema\":\"mfa.telemetry.v1\""),
            std::string::npos);
}

// --- Ruleset hot-swap telemetry (DESIGN.md Sec. 10) ---

TEST(RulesetSwapTelemetry, RecordsGaugeCounterHistogramAndTraceEvent) {
  MetricsRegistry reg(1);
  reg.record_ruleset_swap(3, 1500);
  reg.count_match_generation(3);
  reg.count_match_generation(3);
  reg.count_match_generation(1);

  EXPECT_EQ(reg.ruleset_generation(), 3u);
  EXPECT_EQ(reg.ruleset_swaps(), 1u);
  EXPECT_EQ(reg.generation_match_count(3), 2u);
  EXPECT_EQ(reg.generation_match_count(1), 1u);
  EXPECT_EQ(reg.generation_match_count(2), 0u);

  const RegistrySnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.ruleset_generation, 3u);
  EXPECT_EQ(snap.ruleset_swaps, 1u);
  EXPECT_EQ(snap.ruleset_swap_ns.count, 1u);
  EXPECT_EQ(snap.ruleset_swap_ns.sum, 1500u);
  ASSERT_EQ(snap.generation_matches.size(), 2u);  // ascending generation
  EXPECT_EQ(snap.generation_matches[0], (std::pair<std::uint64_t, std::uint64_t>{1, 1}));
  EXPECT_EQ(snap.generation_matches[1], (std::pair<std::uint64_t, std::uint64_t>{3, 2}));
  EXPECT_EQ(snap.generation_match_overflow, 0u);

  // The swap leaves a trace-ring marker carrying the generation.
  bool saw_event = false;
  for (const auto& e : snap.trace_events)
    if (e.match_id == kRulesetSwappedEventId) {
      saw_event = true;
      EXPECT_EQ(e.offset, 3u);
    }
  EXPECT_TRUE(saw_event);
}

TEST(RulesetSwapTelemetry, SlotCollisionCountsOverflowInsteadOfMisattributing) {
  MetricsRegistry reg(1);
  // Generations 5 and 5+32 hash to the same slot; the second claim must be
  // rejected and counted as overflow, never added to generation 5.
  reg.count_match_generation(5);
  reg.count_match_generation(5 + 32);
  const RegistrySnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.generation_matches.size(), 1u);
  EXPECT_EQ(snap.generation_matches[0].first, 5u);
  EXPECT_EQ(snap.generation_matches[0].second, 1u);
  EXPECT_EQ(snap.generation_match_overflow, 1u);
}

TEST(RulesetSwapTelemetry, ExportersRenderSwapFields) {
  MetricsRegistry reg(1);
  reg.record_ruleset_swap(2, 1000);
  reg.count_match_generation(2);
  const RegistrySnapshot snap = reg.snapshot();

  const std::string prom = to_prometheus(snap);
  EXPECT_NE(prom.find("mfa_ruleset_generation 2\n"), std::string::npos) << prom;
  EXPECT_NE(prom.find("mfa_ruleset_swaps_total 1\n"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE mfa_ruleset_swap_ns histogram"), std::string::npos);
  EXPECT_NE(prom.find("mfa_ruleset_swap_ns_count 1\n"), std::string::npos);
  EXPECT_NE(prom.find("mfa_generation_matches_total{generation=\"2\"} 1\n"),
            std::string::npos);
  EXPECT_NE(prom.find("mfa_generation_match_overflow_total 0\n"), std::string::npos);

  const std::string json = to_json(snap);
  EXPECT_NE(json.find("\"ruleset\":{\"generation\":2,\"swaps\":1,"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"generation_matches\":[[2,1]]"), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);  // still JSONL-safe
}

// --- StatsWriter ---

TEST(StatsWriter, AppendsJsonLines) {
  const std::string path =
      ::testing::TempDir() + "mfa_stats_writer_test.jsonl";
  std::remove(path.c_str());
  MetricsRegistry reg(1);
  reg.shard(0).packets.fetch_add(11);
  {
    StatsWriter writer(reg, path, std::chrono::milliseconds(5));
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
  }  // destructor stops and appends a final line
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) contents.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  ASSERT_FALSE(contents.empty());
  std::size_t lines = 0, pos = 0;
  while ((pos = contents.find('\n', pos)) != std::string::npos) {
    ++lines;
    ++pos;
  }
  EXPECT_GE(lines, 2u);  // several periods elapsed plus the final line
  EXPECT_EQ(contents.find("{\"schema\":\"mfa.telemetry.v1\""), 0u);
  EXPECT_NE(contents.find("\"packets\":11"), std::string::npos);
}

TEST(StatsWriter, FinalLineIsFlushedOnStop) {
  const std::string path = ::testing::TempDir() + "mfa_stats_final_line.jsonl";
  std::remove(path.c_str());
  MetricsRegistry reg(1);
  StatsWriter writer(reg, path, std::chrono::hours(1));  // period never fires
  reg.shard(0).packets.fetch_add(42);
  writer.stop();
  // stop() must leave exactly the end-of-run snapshot, already durable.
  EXPECT_EQ(writer.lines_written(), 1u);
  EXPECT_EQ(writer.write_errors(), 0u);
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[8192];
  const std::size_t n = std::fread(buf, 1, sizeof buf, f);
  std::fclose(f);
  std::remove(path.c_str());
  const std::string contents(buf, n);
  EXPECT_NE(contents.find("\"packets\":42"), std::string::npos);
  EXPECT_EQ(contents.back(), '\n');  // complete line, not a torn write
  writer.stop();  // idempotent: no second final line
  EXPECT_EQ(writer.lines_written(), 1u);
}

TEST(StatsWriter, CountsWriteErrorsInsteadOfWedging) {
  MetricsRegistry reg(1);
  StatsWriter writer(reg, "/nonexistent-dir-mfa-test/stats.jsonl",
                     std::chrono::hours(1));
  writer.stop();  // final line fails to open; must not hang or crash
  EXPECT_EQ(writer.lines_written(), 0u);
  EXPECT_GE(writer.write_errors(), 1u);
}

// --- Histogram edge cases ---

TEST(Histogram, EmptyHistogramQuantilesAreZero) {
  const HistogramSnapshot s = Histogram().snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.quantile(0.0), 0u);
  EXPECT_EQ(s.quantile(0.5), 0u);
  EXPECT_EQ(s.quantile(0.99), 0u);
  EXPECT_EQ(s.quantile(1.0), 0u);
}

TEST(Histogram, SingleBucketAnswersEveryQuantile) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(5);  // all land in bucket 3 (4-7)
  const HistogramSnapshot s = h.snapshot();
  for (const double q : {0.0, 0.01, 0.5, 0.99, 1.0})
    EXPECT_EQ(s.quantile(q), 7u) << q;
}

TEST(Histogram, SaturatingTopBucketHoldsMaxValues) {
  Histogram h;
  h.record(~std::uint64_t{0});
  h.record(~std::uint64_t{0} - 1);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.counts[kHistogramBuckets - 1], 2u);
  EXPECT_EQ(s.quantile(1.0), ~std::uint64_t{0});
  EXPECT_EQ(s.max_bucket(), kHistogramBuckets - 1);
}

// --- SpanTraceRing ---

TEST(SpanTraceRing, RecordsAndDrainsOldestFirst) {
  SpanTraceRing ring(4);
  for (std::uint32_t i = 1; i <= 3; ++i)
    ring.record(i, i + 100, 1, 2, 6, /*shard=*/i, /*submit=*/10 * i,
                10 * i + 1, 10 * i + 2, 10 * i + 3);
  EXPECT_EQ(ring.recorded(), 3u);
  const auto events = ring.drain();
  ASSERT_EQ(events.size(), 3u);
  for (std::uint32_t i = 1; i <= 3; ++i) {
    const SpanTraceRing::Event& e = events[i - 1];
    EXPECT_EQ(e.src_ip, i);
    EXPECT_EQ(e.dst_ip, i + 100);
    EXPECT_EQ(e.shard, i);
    EXPECT_EQ(e.submit_tsc, 10u * i);
    EXPECT_EQ(e.dequeue_tsc, 10u * i + 1);
    EXPECT_EQ(e.scan_start_tsc, 10u * i + 2);
    EXPECT_EQ(e.scan_end_tsc, 10u * i + 3);
  }
}

TEST(SpanTraceRing, OverwritesOldestKeepsNewest) {
  SpanTraceRing ring(4);
  for (std::uint32_t i = 0; i < 10; ++i)
    ring.record(i, i, 0, 0, 6, 0, i, i, i, i);
  EXPECT_EQ(ring.recorded(), 10u);
  const auto events = ring.drain();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t k = 0; k < 4; ++k) EXPECT_EQ(events[k].src_ip, 6u + k);
}

// Concurrent drain is best-effort but must never tear an event: every
// drained record carries one writer's self-consistent field pattern.
TEST(SpanTraceRing, ConcurrentWritersNeverTearEvents) {
  SpanTraceRing ring(64);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (std::uint32_t w = 0; w < 3; ++w) {
    writers.emplace_back([&ring, &stop, w] {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        ++i;
        ring.record(w, static_cast<std::uint32_t>(i), 1, 2, 6, w, i, i + 1,
                    i + 2, i + 3);
      }
    });
  }
  for (int round = 0; round < 200; ++round) {
    for (const SpanTraceRing::Event& e : ring.drain()) {
      EXPECT_LT(e.src_ip, 3u);
      EXPECT_EQ(e.shard, e.src_ip);
      EXPECT_EQ(e.dequeue_tsc, e.submit_tsc + 1);
      EXPECT_EQ(e.scan_start_tsc, e.submit_tsc + 2);
      EXPECT_EQ(e.scan_end_tsc, e.submit_tsc + 3);
    }
  }
  stop.store(true);
  for (auto& t : writers) t.join();
}

TEST(MatchTraceRing, ConcurrentWritersNeverTearEvents) {
  MatchTraceRing ring(64);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (std::uint32_t w = 0; w < 3; ++w) {
    writers.emplace_back([&ring, &stop, w] {
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        ++i;
        ring.record(w, static_cast<std::uint32_t>(i), 1, 2, 6, w, i, i + 7);
      }
    });
  }
  for (int round = 0; round < 200; ++round) {
    for (const MatchTraceRing::Event& e : ring.drain()) {
      EXPECT_LT(e.src_ip, 3u);
      EXPECT_EQ(e.match_id, e.src_ip);
      EXPECT_EQ(e.tsc, e.offset + 7);
    }
  }
  stop.store(true);
  for (auto& t : writers) t.join();
}

// --- Exporter conformance ---

TEST(Exporters, PromEscapeLabelHandlesHostileValues) {
  EXPECT_EQ(prom_escape_label("plain"), "plain");
  EXPECT_EQ(prom_escape_label("a\"b"), "a\\\"b");
  EXPECT_EQ(prom_escape_label("a\\b"), "a\\\\b");
  EXPECT_EQ(prom_escape_label("a\nb"), "a\\nb");
  EXPECT_EQ(prom_escape_label("\\\"\n"), "\\\\\\\"\\n");
}

TEST(Exporters, PromMetricNameValidity) {
  EXPECT_TRUE(prom_metric_name_valid("mfa_packets_total"));
  EXPECT_TRUE(prom_metric_name_valid("a:b_c9"));
  EXPECT_TRUE(prom_metric_name_valid("_x"));
  EXPECT_FALSE(prom_metric_name_valid(""));
  EXPECT_FALSE(prom_metric_name_valid("9starts_with_digit"));
  EXPECT_FALSE(prom_metric_name_valid("has-dash"));
  EXPECT_FALSE(prom_metric_name_valid("has space"));
  EXPECT_FALSE(prom_metric_name_valid("has\nnewline"));
}

TEST(Exporters, JsonEscapeControlChars) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(Exporters, HostileRuleNamesStayConformant) {
  MetricsRegistry reg({.shards = 1, .match_id_capacity = 8});
  reg.shard(0).packets.fetch_add(1);
  reg.count_match(1);
  reg.count_match(2);
  // Names a malicious or merely unlucky ruleset could carry.
  const std::vector<std::string> names = {"", "ok",
                                          "evil\"quote\\back\nline"};
  const RegistrySnapshot snap = reg.snapshot();
  const std::string prom = to_prometheus(snap, &names);
  // The hostile name appears escaped; no raw newline may survive inside a
  // label value (that would split the exposition line).
  EXPECT_NE(prom.find("rule=\"evil\\\"quote\\\\back\\nline\""),
            std::string::npos);
  EXPECT_EQ(prom.find("back\nline"), std::string::npos);
  // Every non-comment line is `name{...} value` or `name value`.
  std::size_t start = 0;
  while (start < prom.size()) {
    std::size_t end = prom.find('\n', start);
    if (end == std::string::npos) end = prom.size();
    const std::string line = prom.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t name_end = line.find_first_of("{ ");
    ASSERT_NE(name_end, std::string::npos) << line;
    EXPECT_TRUE(prom_metric_name_valid(line.substr(0, name_end))) << line;
    EXPECT_NE(line.find(' '), std::string::npos) << line;
  }
  // The JSON exporter escapes the same names.
  const std::string json = to_json(snap);
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

// --- Profiler ---

TEST(Profiler, EvenSplitConservesTotals) {
  Profiler prof({.rule_capacity = 8, .state_capacity = 0, .sample_shift = 0});
  const std::uint32_t ids[] = {1, 1, 2};
  prof.record_rules(ids, 3, /*ns=*/10, /*bytes=*/8);
  prof.record_unmatched(5, 100);
  const ProfileSnapshot s = prof.snapshot();
  EXPECT_EQ(s.sampled_packets, 2u);
  EXPECT_EQ(s.sampled_ns, 15u);
  EXPECT_EQ(s.sampled_bytes, 108u);
  std::uint64_t rule_ns = 0, rule_bytes = 0, rule_samples = 0;
  for (const RuleCost& r : s.rules) {
    rule_ns += r.ns;
    rule_bytes += r.bytes;
    rule_samples += r.samples;
  }
  // Attribution conserves the packet's totals exactly (remainder included).
  EXPECT_EQ(rule_ns + s.unmatched.ns, s.sampled_ns);
  EXPECT_EQ(rule_bytes + s.unmatched.bytes, s.sampled_bytes);
  EXPECT_EQ(rule_samples, 3u);  // one per id occurrence
  ASSERT_EQ(s.rules.size(), 2u);
  EXPECT_EQ(s.rules[0].id, 1u);
  EXPECT_EQ(s.rules[0].samples, 2u);
  EXPECT_EQ(s.rules[1].id, 2u);
  EXPECT_EQ(s.rules[1].ns, 10u / 3);
}

TEST(Profiler, NoMatchIdsChargeUnmatched) {
  Profiler prof({.rule_capacity = 4, .state_capacity = 0, .sample_shift = 0});
  prof.record_rules(nullptr, 0, 7, 70);
  const ProfileSnapshot s = prof.snapshot();
  EXPECT_TRUE(s.rules.empty());
  EXPECT_EQ(s.unmatched.samples, 1u);
  EXPECT_EQ(s.unmatched.ns, 7u);
  EXPECT_EQ(s.unmatched.bytes, 70u);
}

TEST(Profiler, IdsBeyondCapacityCountOverflow) {
  Profiler prof({.rule_capacity = 2, .state_capacity = 4, .sample_shift = 0});
  const std::uint32_t ids[] = {1, 99};
  prof.record_rules(ids, 2, 10, 10);
  prof.record_state(3);
  prof.record_state(100);
  const ProfileSnapshot s = prof.snapshot();
  EXPECT_EQ(s.rule_overflow, 1u);
  EXPECT_EQ(s.state_overflow, 1u);
  ASSERT_EQ(s.state_visits.size(), 4u);
  EXPECT_EQ(s.state_visits[3], 1u);
  EXPECT_EQ(s.hot_states(), 1u);
}

TEST(Profiler, ProfileJsonAndTableRender) {
  Profiler prof({.rule_capacity = 8, .state_capacity = 4, .sample_shift = 2});
  const std::uint32_t ids[] = {1};
  prof.record_rules(ids, 1, 1000, 500);
  prof.record_state(2);
  const std::vector<std::string> names = {"", "alpha\"quote"};
  const ProfileSnapshot s = prof.snapshot();
  const std::string json = to_profile_json(s, 5, &names);
  EXPECT_EQ(json.find("{\"schema\":\"mfa.profile.v1\""), 0u);
  EXPECT_NE(json.find("\"sample_shift\":2"), std::string::npos);
  EXPECT_NE(json.find("\"id\":1"), std::string::npos);
  EXPECT_NE(json.find("alpha\\\"quote"), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);
  const std::string table = profile_table(s, 5, &names);
  EXPECT_NE(table.find("alpha\"quote"), std::string::npos);
  EXPECT_NE(table.find("hot/tracked: 1/4"), std::string::npos);
}

// --- Profiler wired through both flow inspectors (tiered parity) ---

template <typename InspectorT>
void expect_profiler_attribution() {
  auto m = core::build_mfa(compile_patterns({".*needle"}));
  ASSERT_TRUE(m.has_value());
  MetricsRegistry reg(1);
  Profiler prof({.rule_capacity = 8,
                 .state_capacity = m->state_count(),
                 .sample_shift = 0});  // sample every scan unit
  InspectorT insp(*m);
  insp.set_metrics(&reg, 0);
  insp.set_profiler(&prof);
  const std::string hit = "xx needle yy";
  const std::string miss = "nothing here";
  CollectingSink sink;
  insp.packet(flow::Packet{flow::FlowKey{1, 2, 3, 4, 6}, 0,
                           reinterpret_cast<const std::uint8_t*>(hit.data()),
                           static_cast<std::uint32_t>(hit.size())},
              sink);
  insp.packet(flow::Packet{flow::FlowKey{5, 6, 7, 8, 6}, 0,
                           reinterpret_cast<const std::uint8_t*>(miss.data()),
                           static_cast<std::uint32_t>(miss.size())},
              sink);
  EXPECT_EQ(sink.matches.size(), 1u);
  const ProfileSnapshot s = prof.snapshot();
  EXPECT_EQ(s.sampled_packets, 2u);
  EXPECT_EQ(s.sampled_bytes, hit.size() + miss.size());
  ASSERT_EQ(s.rules.size(), 1u);
  EXPECT_EQ(s.rules[0].id, 1u);
  EXPECT_EQ(s.rules[0].bytes, hit.size());
  EXPECT_EQ(s.unmatched.samples, 1u);
  EXPECT_EQ(s.unmatched.bytes, miss.size());
  // Both live flows' automaton states were sampled.
  std::uint64_t visits = 0;
  for (const std::uint64_t v : s.state_visits) visits += v;
  EXPECT_EQ(visits + s.state_overflow, 2u);
}

TEST(FlowInspectorProfiler, AttributesCostToRulesAndStates) {
  expect_profiler_attribution<flow::FlowInspector<core::Mfa>>();
}

TEST(TieredFlowInspectorProfiler, AttributesCostToRulesAndStates) {
  expect_profiler_attribution<flow::TieredFlowInspector<core::Mfa>>();
}

// --- Latency spans through the sharded pipeline ---

TEST(PipelineSpans, EveryPacketSampledAtShiftZero) {
  auto m = core::build_mfa(compile_patterns({".*atk1.*vec2", ".*worm77"}));
  ASSERT_TRUE(m.has_value());
  const trace::Trace t = trace::make_real_life(
      trace::RealLifeProfile::kCyberDefense, 100000, 7, {"atk1 and vec2"});
  MetricsRegistry reg({.shards = 2, .span_capacity = 64});
  pipeline::Options opt;
  opt.shards = 2;
  opt.metrics = &reg;
  opt.trace_sample_shift = 0;  // stamp every submitted packet
  pipeline::ShardedInspector<core::Mfa> pipe(*m, opt);
  pipe.start();
  std::uint64_t packets = 0;
  t.for_each_packet([&](const flow::Packet& p) {
    ++packets;
    pipe.submit(p);
  });
  pipe.finish();

  const RegistrySnapshot snap = reg.snapshot();
  const ShardSnapshot totals = snap.totals();
  EXPECT_EQ(totals.spans_sampled, packets);
  EXPECT_EQ(totals.queue_wait_ns.count, packets);
  EXPECT_EQ(totals.span_scan_ns.count, packets);
  EXPECT_EQ(totals.e2e_ns.count, packets);
  EXPECT_EQ(snap.span_recorded, packets);
  ASSERT_FALSE(snap.span_events.empty());
  for (const SpanTraceRing::Event& e : snap.span_events) {
    EXPECT_LT(e.shard, 2u);
    EXPECT_NE(e.submit_tsc, 0u);
    EXPECT_GE(e.scan_end_tsc, e.scan_start_tsc);  // same worker thread
    EXPECT_GE(e.scan_start_tsc, e.dequeue_tsc);
  }
  // Both exporters carry the span data.
  const std::string prom = to_prometheus(snap);
  EXPECT_NE(prom.find("mfa_spans_sampled_total"), std::string::npos);
  EXPECT_NE(prom.find("mfa_queue_wait_ns_bucket"), std::string::npos);
  EXPECT_NE(prom.find("mfa_e2e_ns_count"), std::string::npos);
  const std::string json = to_json(snap);
  EXPECT_NE(json.find("\"spans\":"), std::string::npos);
  EXPECT_NE(json.find("\"queue_wait_ns\""), std::string::npos);
}

TEST(PipelineSpans, DefaultShiftSamplesSparselyAndOffDisables) {
  auto m = core::build_mfa(compile_patterns({".*worm77"}));
  ASSERT_TRUE(m.has_value());
  const trace::Trace t = trace::make_real_life(
      trace::RealLifeProfile::kCyberDefense, 200000, 9, {"worm77"});
  std::uint64_t packets = 0;
  t.for_each_packet([&](const flow::Packet&) { ++packets; });

  MetricsRegistry sparse_reg({.shards = 1});
  pipeline::Options opt;
  opt.shards = 1;
  opt.metrics = &sparse_reg;  // default shift 6 = 1 in 64
  pipeline::ShardedInspector<core::Mfa> sparse(*m, opt);
  sparse.start();
  t.for_each_packet([&](const flow::Packet& p) { sparse.submit(p); });
  sparse.finish();
  const std::uint64_t sampled = sparse_reg.snapshot().totals().spans_sampled;
  EXPECT_GT(sampled, 0u);
  EXPECT_LE(sampled, packets / 32);  // ~1/64 expected; allow 2x jitter

  MetricsRegistry off_reg({.shards = 1});
  opt.metrics = &off_reg;
  opt.trace_sample_shift = 64;  // spans disabled entirely
  pipeline::ShardedInspector<core::Mfa> off(*m, opt);
  off.start();
  t.for_each_packet([&](const flow::Packet& p) { off.submit(p); });
  off.finish();
  EXPECT_EQ(off_reg.snapshot().totals().spans_sampled, 0u);
  EXPECT_EQ(off_reg.snapshot().span_recorded, 0u);
}

}  // namespace
}  // namespace mfa::obs
