// Telemetry layer: histogram bucket boundaries and merge, trace-ring
// overwrite semantics, FlowInspector instrumentation, Prometheus/JSON
// exporter golden output (and that both render the same snapshot), and the
// periodic stats writer.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>

#include "engine_test_util.h"
#include "flow/flow.h"
#include "obs/export.h"
#include "obs/stats_writer.h"

namespace mfa::obs {
namespace {

using mfa::testing::compile_patterns;

// --- Histogram ---

TEST(Histogram, BucketIndexBoundaries) {
  // Bucket i holds values of bit width i: 0 | 1 | 2-3 | 4-7 | 8-15 | ...
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 1u);
  EXPECT_EQ(Histogram::bucket_index(2), 2u);
  EXPECT_EQ(Histogram::bucket_index(3), 2u);
  EXPECT_EQ(Histogram::bucket_index(4), 3u);
  EXPECT_EQ(Histogram::bucket_index(7), 3u);
  EXPECT_EQ(Histogram::bucket_index(8), 4u);
  EXPECT_EQ(Histogram::bucket_index(1023), 10u);
  EXPECT_EQ(Histogram::bucket_index(1024), 11u);
  EXPECT_EQ(Histogram::bucket_index(~std::uint64_t{0}), kHistogramBuckets - 1);
}

TEST(Histogram, BucketUpperBounds) {
  EXPECT_EQ(Histogram::bucket_upper_bound(0), 0u);
  EXPECT_EQ(Histogram::bucket_upper_bound(1), 1u);
  EXPECT_EQ(Histogram::bucket_upper_bound(2), 3u);
  EXPECT_EQ(Histogram::bucket_upper_bound(3), 7u);
  EXPECT_EQ(Histogram::bucket_upper_bound(10), 1023u);
  EXPECT_EQ(Histogram::bucket_upper_bound(kHistogramBuckets - 1), ~std::uint64_t{0});
  // Every value lands in the bucket whose bounds contain it.
  for (std::uint64_t v : {0ull, 1ull, 2ull, 5ull, 100ull, 65535ull, 1ull << 30}) {
    const std::size_t b = Histogram::bucket_index(v);
    EXPECT_LE(v, Histogram::bucket_upper_bound(b)) << v;
    if (b > 0) {
      EXPECT_GT(v, Histogram::bucket_upper_bound(b - 1)) << v;
    }
  }
}

TEST(Histogram, RecordSnapshotAndMerge) {
  Histogram h;
  h.record(0);
  h.record(3);
  h.record(3);
  h.record(100);
  HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum, 106u);
  EXPECT_EQ(s.counts[0], 1u);
  EXPECT_EQ(s.counts[2], 2u);
  EXPECT_EQ(s.counts[7], 1u);  // 100 has bit width 7
  EXPECT_DOUBLE_EQ(s.mean(), 106.0 / 4.0);
  EXPECT_EQ(s.max_bucket(), 7u);

  Histogram h2;
  h2.record(1 << 20);
  s += h2.snapshot();
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.sum, 106u + (1u << 20));
  EXPECT_EQ(s.counts[21], 1u);
  EXPECT_EQ(s.max_bucket(), 21u);
}

TEST(Histogram, QuantileIsLogGranular) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.record(10);    // bucket 4, upper bound 15
  for (int i = 0; i < 10; ++i) h.record(1000);  // bucket 10, upper bound 1023
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.quantile(0.5), 15u);
  EXPECT_EQ(s.quantile(0.99), 1023u);
  EXPECT_EQ(HistogramSnapshot{}.quantile(0.5), 0u);
}

// --- MatchTraceRing ---

TEST(MatchTraceRing, OverwritesOldestKeepsNewest) {
  MatchTraceRing ring(8);
  EXPECT_EQ(ring.capacity(), 8u);
  for (std::uint32_t i = 0; i < 20; ++i)
    ring.record(i, 2 * i, 10, 20, 6, /*match_id=*/i, /*offset=*/100 + i, /*tsc=*/i);
  EXPECT_EQ(ring.recorded(), 20u);
  const auto events = ring.drain();
  ASSERT_EQ(events.size(), 8u);
  // The newest 8 events (ids 12..19), oldest first.
  for (std::size_t k = 0; k < 8; ++k) {
    EXPECT_EQ(events[k].match_id, 12u + k);
    EXPECT_EQ(events[k].src_ip, 12u + k);
    EXPECT_EQ(events[k].dst_ip, 2 * (12u + k));
    EXPECT_EQ(events[k].src_port, 10u);
    EXPECT_EQ(events[k].dst_port, 20u);
    EXPECT_EQ(events[k].proto, 6u);
    EXPECT_EQ(events[k].offset, 112u + k);
  }
  // Draining does not consume: a second drain sees the same events.
  EXPECT_EQ(ring.drain().size(), 8u);
}

TEST(MatchTraceRing, PartiallyFilledDrainsInOrder) {
  MatchTraceRing ring(16);
  ring.record(1, 1, 1, 1, 6, 7, 50, 0);
  ring.record(2, 2, 2, 2, 17, 9, 60, 1);
  const auto events = ring.drain();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].match_id, 7u);
  EXPECT_EQ(events[1].match_id, 9u);
  EXPECT_EQ(events[1].proto, 17u);
}

TEST(MatchTraceRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MatchTraceRing(1).capacity(), 2u);
  EXPECT_EQ(MatchTraceRing(5).capacity(), 8u);
  EXPECT_EQ(MatchTraceRing(1024).capacity(), 1024u);
}

// --- MetricsRegistry ---

TEST(MetricsRegistry, SnapshotAggregatesShardsAndMatchIds) {
  MetricsRegistry reg({.shards = 2, .match_id_capacity = 16, .trace_capacity = 8});
  reg.shard(0).packets.fetch_add(3);
  reg.shard(0).bytes.fetch_add(300);
  reg.shard(1).packets.fetch_add(5);
  reg.shard(1).bytes.fetch_add(500);
  reg.shard(1).queue_full_spins.fetch_add(7);
  reg.count_match(5);
  reg.count_match(5);
  reg.count_match(99);  // beyond capacity -> overflow bucket
  const RegistrySnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.shards.size(), 2u);
  EXPECT_EQ(snap.shards[0].packets, 3u);
  EXPECT_EQ(snap.shards[1].packets, 5u);
  const ShardSnapshot t = snap.totals();
  EXPECT_EQ(t.packets, 8u);
  EXPECT_EQ(t.bytes, 800u);
  EXPECT_EQ(t.queue_full_spins, 7u);
  ASSERT_EQ(snap.match_counts.size(), 1u);
  EXPECT_EQ(snap.match_counts[0].first, 5u);
  EXPECT_EQ(snap.match_counts[0].second, 2u);
  EXPECT_EQ(snap.match_id_overflow, 1u);
  EXPECT_EQ(reg.match_count(5), 2u);
}

// --- FlowInspector instrumentation ---

TEST(FlowInspectorTelemetry, CountsPacketsMatchesAndTraceEvents) {
  auto m = core::build_mfa(compile_patterns({".*needle"}));
  ASSERT_TRUE(m.has_value());
  MetricsRegistry reg({.shards = 1, .match_id_capacity = 16, .trace_capacity = 16});
  flow::FlowInspector<core::Mfa> insp(*m);
  insp.set_metrics(&reg, 0);

  const std::string payload = "xx needle yy";
  const flow::FlowKey key{0x0a000001, 0x0a000002, 1234, 80, 6};
  CollectingSink sink;
  insp.packet(flow::Packet{key, 0,
                           reinterpret_cast<const std::uint8_t*>(payload.data()),
                           static_cast<std::uint32_t>(payload.size())},
              sink);
  // Second flow: an out-of-order segment that stays buffered.
  const flow::FlowKey key2{0x0a000003, 0x0a000004, 5, 6, 6};
  insp.packet(flow::Packet{key2, 100,
                           reinterpret_cast<const std::uint8_t*>(payload.data()),
                           static_cast<std::uint32_t>(payload.size())},
              sink);

  ASSERT_EQ(sink.matches.size(), 1u);
  const RegistrySnapshot snap = reg.snapshot();
  const ShardSnapshot& s = snap.shards.at(0);
  EXPECT_EQ(s.packets, 2u);
  EXPECT_EQ(s.bytes, 2 * payload.size());
  EXPECT_EQ(s.matches, 1u);
  EXPECT_EQ(s.flows, 2u);
  EXPECT_EQ(s.reassembly_pending_bytes, payload.size());
  EXPECT_EQ(s.scan_ns.count, 2u);
  EXPECT_EQ(s.packet_bytes.count, 2u);
  EXPECT_EQ(s.packet_bytes.sum, 2 * payload.size());

  ASSERT_EQ(snap.match_counts.size(), 1u);
  EXPECT_EQ(snap.match_counts[0].first, sink.matches[0].id);
  EXPECT_EQ(snap.match_counts[0].second, 1u);

  ASSERT_EQ(snap.trace_events.size(), 1u);
  const MatchTraceRing::Event& e = snap.trace_events[0];
  EXPECT_EQ(e.src_ip, key.src_ip);
  EXPECT_EQ(e.dst_ip, key.dst_ip);
  EXPECT_EQ(e.src_port, key.src_port);
  EXPECT_EQ(e.dst_port, key.dst_port);
  EXPECT_EQ(e.proto, key.proto);
  EXPECT_EQ(e.match_id, sink.matches[0].id);
  EXPECT_EQ(e.offset, sink.matches[0].end);
}

TEST(FlowInspectorTelemetry, DetachedInspectorTouchesNothing) {
  auto m = core::build_mfa(compile_patterns({".*needle"}));
  ASSERT_TRUE(m.has_value());
  MetricsRegistry reg(1);
  flow::FlowInspector<core::Mfa> insp(*m);  // never attached
  const std::string payload = "a needle";
  CollectingSink sink;
  insp.packet(flow::Packet{flow::FlowKey{1, 2, 3, 4, 6}, 0,
                           reinterpret_cast<const std::uint8_t*>(payload.data()),
                           static_cast<std::uint32_t>(payload.size())},
              sink);
  EXPECT_EQ(sink.matches.size(), 1u);
  EXPECT_EQ(reg.snapshot().totals().packets, 0u);
}

// --- Exporters ---

RegistrySnapshot known_snapshot() {
  MetricsRegistry reg({.shards = 1, .match_id_capacity = 16, .trace_capacity = 8});
  ShardMetrics& s = reg.shard(0);
  s.packets.fetch_add(3);
  s.bytes.fetch_add(1500);
  s.matches.fetch_add(2);
  s.flows.store(4);
  s.evictions.fetch_add(1);
  s.queue_full_spins.fetch_add(9);
  s.max_queue_depth.store(17);
  s.scan_ns.record(100);
  s.scan_ns.record(1000);
  s.packet_bytes.record(500);
  reg.count_match(7);
  reg.count_match(7);
  reg.trace().record(1, 2, 3, 4, 6, 7, 42, 5);
  return reg.snapshot();
}

TEST(Exporters, PrometheusGoldenLines) {
  const std::string out = to_prometheus(known_snapshot());
  EXPECT_NE(out.find("# TYPE mfa_packets_total counter\n"
                     "mfa_packets_total{shard=\"0\"} 3\n"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("mfa_bytes_total{shard=\"0\"} 1500\n"), std::string::npos);
  EXPECT_NE(out.find("mfa_matches_total{shard=\"0\"} 2\n"), std::string::npos);
  EXPECT_NE(out.find("# TYPE mfa_flows gauge\nmfa_flows{shard=\"0\"} 4\n"),
            std::string::npos);
  EXPECT_NE(out.find("mfa_queue_full_spins_total{shard=\"0\"} 9\n"),
            std::string::npos);
  EXPECT_NE(out.find("mfa_queue_max_depth{shard=\"0\"} 17\n"), std::string::npos);
  // Histogram: 100 -> bucket bound 127, 1000 -> bucket bound 1023; buckets
  // are cumulative and end with +Inf == count.
  EXPECT_NE(out.find("mfa_scan_ns_bucket{shard=\"0\",le=\"127\"} 1\n"),
            std::string::npos);
  EXPECT_NE(out.find("mfa_scan_ns_bucket{shard=\"0\",le=\"1023\"} 2\n"),
            std::string::npos);
  EXPECT_NE(out.find("mfa_scan_ns_bucket{shard=\"0\",le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(out.find("mfa_scan_ns_sum{shard=\"0\"} 1100\n"), std::string::npos);
  EXPECT_NE(out.find("mfa_scan_ns_count{shard=\"0\"} 2\n"), std::string::npos);
  EXPECT_NE(out.find("mfa_match_hits_total{id=\"7\"} 2\n"), std::string::npos);
  EXPECT_NE(out.find("mfa_trace_events_total 1\n"), std::string::npos);
}

TEST(Exporters, JsonGoldenFields) {
  const std::string out = to_json(known_snapshot());
  EXPECT_EQ(out.find("{\"schema\":\"mfa.telemetry.v1\""), 0u) << out;
  EXPECT_NE(out.find("\"packets\":3"), std::string::npos);
  EXPECT_NE(out.find("\"bytes\":1500"), std::string::npos);
  EXPECT_NE(out.find("\"queue_full_spins\":9"), std::string::npos);
  EXPECT_NE(out.find("\"scan_ns\":{\"count\":2,\"sum\":1100,\"buckets\":"
                     "[[127,1],[1023,1]]}"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("\"match_counts\":[[7,2]]"), std::string::npos);
  EXPECT_NE(out.find("\"trace\":{\"recorded\":1,\"events\":[{\"src_ip\":1,"
                     "\"dst_ip\":2,\"src_port\":3,\"dst_port\":4,\"proto\":6,"
                     "\"id\":7,\"offset\":42,\"tsc\":5}]}"),
            std::string::npos)
      << out;
  EXPECT_EQ(out.find('\n'), std::string::npos);  // single line (JSONL-safe)
}

TEST(Exporters, PrometheusAndJsonRenderTheSameSnapshot) {
  const RegistrySnapshot snap = known_snapshot();
  const std::string prom = to_prometheus(snap);
  const std::string json = to_json(snap);
  const ShardSnapshot t = snap.totals();
  // Every headline counter appears with the same value in both renderings.
  EXPECT_NE(prom.find("mfa_packets_total{shard=\"0\"} " + std::to_string(t.packets)),
            std::string::npos);
  EXPECT_NE(json.find("\"packets\":" + std::to_string(t.packets)), std::string::npos);
  EXPECT_NE(prom.find("mfa_bytes_total{shard=\"0\"} " + std::to_string(t.bytes)),
            std::string::npos);
  EXPECT_NE(json.find("\"bytes\":" + std::to_string(t.bytes)), std::string::npos);
  EXPECT_NE(prom.find("mfa_matches_total{shard=\"0\"} " + std::to_string(t.matches)),
            std::string::npos);
  EXPECT_NE(json.find("\"matches\":" + std::to_string(t.matches)), std::string::npos);
}

TEST(Exporters, BenchReportSchema) {
  BenchReport report("unit");
  report.add("C8", "LL1", "mfa", 49.25, 12, 4);
  report.set_telemetry(known_snapshot());
  const std::string out = report.to_json();
  EXPECT_EQ(out.find("{\"schema\":\"mfa.bench.v1\",\"bench\":\"unit\""), 0u) << out;
  EXPECT_NE(out.find("{\"set\":\"C8\",\"trace\":\"LL1\",\"engine\":\"mfa\","
                     "\"shards\":4,\"cycles_per_byte\":49.25,\"matches\":12}"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("\"telemetry\":{\"schema\":\"mfa.telemetry.v1\""),
            std::string::npos);
}

// --- Ruleset hot-swap telemetry (DESIGN.md Sec. 10) ---

TEST(RulesetSwapTelemetry, RecordsGaugeCounterHistogramAndTraceEvent) {
  MetricsRegistry reg(1);
  reg.record_ruleset_swap(3, 1500);
  reg.count_match_generation(3);
  reg.count_match_generation(3);
  reg.count_match_generation(1);

  EXPECT_EQ(reg.ruleset_generation(), 3u);
  EXPECT_EQ(reg.ruleset_swaps(), 1u);
  EXPECT_EQ(reg.generation_match_count(3), 2u);
  EXPECT_EQ(reg.generation_match_count(1), 1u);
  EXPECT_EQ(reg.generation_match_count(2), 0u);

  const RegistrySnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.ruleset_generation, 3u);
  EXPECT_EQ(snap.ruleset_swaps, 1u);
  EXPECT_EQ(snap.ruleset_swap_ns.count, 1u);
  EXPECT_EQ(snap.ruleset_swap_ns.sum, 1500u);
  ASSERT_EQ(snap.generation_matches.size(), 2u);  // ascending generation
  EXPECT_EQ(snap.generation_matches[0], (std::pair<std::uint64_t, std::uint64_t>{1, 1}));
  EXPECT_EQ(snap.generation_matches[1], (std::pair<std::uint64_t, std::uint64_t>{3, 2}));
  EXPECT_EQ(snap.generation_match_overflow, 0u);

  // The swap leaves a trace-ring marker carrying the generation.
  bool saw_event = false;
  for (const auto& e : snap.trace_events)
    if (e.match_id == kRulesetSwappedEventId) {
      saw_event = true;
      EXPECT_EQ(e.offset, 3u);
    }
  EXPECT_TRUE(saw_event);
}

TEST(RulesetSwapTelemetry, SlotCollisionCountsOverflowInsteadOfMisattributing) {
  MetricsRegistry reg(1);
  // Generations 5 and 5+32 hash to the same slot; the second claim must be
  // rejected and counted as overflow, never added to generation 5.
  reg.count_match_generation(5);
  reg.count_match_generation(5 + 32);
  const RegistrySnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.generation_matches.size(), 1u);
  EXPECT_EQ(snap.generation_matches[0].first, 5u);
  EXPECT_EQ(snap.generation_matches[0].second, 1u);
  EXPECT_EQ(snap.generation_match_overflow, 1u);
}

TEST(RulesetSwapTelemetry, ExportersRenderSwapFields) {
  MetricsRegistry reg(1);
  reg.record_ruleset_swap(2, 1000);
  reg.count_match_generation(2);
  const RegistrySnapshot snap = reg.snapshot();

  const std::string prom = to_prometheus(snap);
  EXPECT_NE(prom.find("mfa_ruleset_generation 2\n"), std::string::npos) << prom;
  EXPECT_NE(prom.find("mfa_ruleset_swaps_total 1\n"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE mfa_ruleset_swap_ns histogram"), std::string::npos);
  EXPECT_NE(prom.find("mfa_ruleset_swap_ns_count 1\n"), std::string::npos);
  EXPECT_NE(prom.find("mfa_generation_matches_total{generation=\"2\"} 1\n"),
            std::string::npos);
  EXPECT_NE(prom.find("mfa_generation_match_overflow_total 0\n"), std::string::npos);

  const std::string json = to_json(snap);
  EXPECT_NE(json.find("\"ruleset\":{\"generation\":2,\"swaps\":1,"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"generation_matches\":[[2,1]]"), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);  // still JSONL-safe
}

// --- StatsWriter ---

TEST(StatsWriter, AppendsJsonLines) {
  const std::string path =
      ::testing::TempDir() + "mfa_stats_writer_test.jsonl";
  std::remove(path.c_str());
  MetricsRegistry reg(1);
  reg.shard(0).packets.fetch_add(11);
  {
    StatsWriter writer(reg, path, std::chrono::milliseconds(5));
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
  }  // destructor stops and appends a final line
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) contents.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  ASSERT_FALSE(contents.empty());
  std::size_t lines = 0, pos = 0;
  while ((pos = contents.find('\n', pos)) != std::string::npos) {
    ++lines;
    ++pos;
  }
  EXPECT_GE(lines, 2u);  // several periods elapsed plus the final line
  EXPECT_EQ(contents.find("{\"schema\":\"mfa.telemetry.v1\""), 0u);
  EXPECT_NE(contents.find("\"packets\":11"), std::string::npos);
}

}  // namespace
}  // namespace mfa::obs
