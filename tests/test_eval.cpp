#include "eval/harness.h"

#include <gtest/gtest.h>

namespace mfa::eval {
namespace {

TEST(Harness, BuildSuiteSmallSet) {
  const patterns::PatternSet set =
      patterns::make_custom("mini", {".*ab12.*cd34", ".*plainword", "^GET [^\\r\\n]*etc"});
  const Suite suite = build_suite(set);
  EXPECT_TRUE(suite.nfa_build.ok);
  EXPECT_TRUE(suite.dfa_build.ok);
  EXPECT_TRUE(suite.mfa_build.ok);
  EXPECT_TRUE(suite.hfa_build.ok);
  EXPECT_TRUE(suite.xfa_build.ok);
  EXPECT_GT(suite.nfa_build.states, 0u);
  EXPECT_GT(suite.dfa_build.image_bytes, suite.mfa_build.image_bytes);
  EXPECT_GT(suite.hfa_build.image_bytes, suite.mfa_build.image_bytes);
}

TEST(Harness, DfaCapReportsFailure) {
  patterns::PatternSet set = patterns::make_custom(
      "explode", {".*aaaa.*bbbb.*cccc", ".*dddd.*eeee.*ffff", ".*gggg.*hhhh.*iiii",
                  ".*jjjj.*kkkk.*llll"});
  SuiteOptions opts;
  opts.dfa_max_states = 200;
  const Suite suite = build_suite(set, opts);
  EXPECT_FALSE(suite.dfa_build.ok);
  EXPECT_FALSE(suite.dfa.has_value());
  EXPECT_TRUE(suite.mfa_build.ok);  // decomposition keeps MFA constructable
}

TEST(Harness, ThroughputMeasurement) {
  const patterns::PatternSet set = patterns::make_custom("mini", {".*abcq.*wxyz"});
  const Suite suite = build_suite(set);
  ASSERT_TRUE(suite.mfa.has_value());
  const trace::Trace t =
      trace::make_real_life(trace::RealLifeProfile::kNitroba, 100000, 1, {"abcq wxyz"});
  const Throughput tp = measure_throughput(*suite.mfa, t);
  EXPECT_GT(tp.cycles_per_byte, 0.0);
  EXPECT_LT(tp.cycles_per_byte, 10000.0);
  EXPECT_GT(tp.flows, 1u);
}

TEST(Harness, AttackExemplarsSampleFromPatterns) {
  const patterns::PatternSet set = patterns::make_custom("mini", {".*abc.*xyz", ".*foo"});
  const auto ex = attack_exemplars(set, 3, 5);
  EXPECT_EQ(ex.size(), 6u);
  for (const auto& s : ex) EXPECT_FALSE(s.empty());
}

TEST(Harness, EnginesAgreeOnTraceMatchCounts) {
  // End-to-end integration: all engines must report identical confirmed
  // match counts over a multiplexed trace.
  const patterns::PatternSet set = patterns::make_custom(
      "mini", {".*atk7.*vec9", ".*hd2r[^\\n]*va4l", ".*sig77sig88"});
  const Suite suite = build_suite(set);
  ASSERT_TRUE(suite.dfa && suite.mfa && suite.hfa && suite.xfa);
  const auto exemplars = attack_exemplars(set, 4, 9);
  const trace::Trace t =
      trace::make_real_life(trace::RealLifeProfile::kCyberDefense, 150000, 2, exemplars);
  const auto nfa_tp = measure_throughput(suite.nfa, t, 1);
  const auto dfa_tp = measure_throughput(*suite.dfa, t, 1);
  const auto mfa_tp = measure_throughput(*suite.mfa, t, 1);
  const auto hfa_tp = measure_throughput(*suite.hfa, t, 1);
  const auto xfa_tp = measure_throughput(*suite.xfa, t, 1);
  EXPECT_GT(dfa_tp.matches, 0u);
  EXPECT_EQ(nfa_tp.matches, dfa_tp.matches);
  EXPECT_EQ(mfa_tp.matches, dfa_tp.matches);
  EXPECT_EQ(hfa_tp.matches, dfa_tp.matches);
  EXPECT_EQ(xfa_tp.matches, dfa_tp.matches);
}

}  // namespace
}  // namespace mfa::eval
