// The paper's worked examples (Tables I-IV) as executable tests.
#include <gtest/gtest.h>

#include "engine_test_util.h"
#include "mfa/mfa.h"
#include "split/splitter.h"

namespace mfa {
namespace {

using core::Mfa;
using core::MfaScanner;
using filter::kNone;
using mfa::testing::compile_patterns;
using mfa::testing::reference_matches;
using mfa::testing::sorted;

// R1 from Table I: three dot-star patterns.
const std::vector<std::string> kR1 = {".*vi.*emacs", ".*bsd.*gnu", ".*abc.*mm?o.*xyz"};

TEST(PaperTable1, R1DecomposesIntoR2LikePieces) {
  // R2 of Table I is exactly the segment set {vi, emacs, bsd, gnu, abc,
  // mm?o, xyz}: splitting R1 must produce those 7 pieces.
  const split::SplitResult r = split::split_patterns(compile_patterns(kR1));
  EXPECT_EQ(r.pieces.size(), 7u);
  EXPECT_EQ(r.stats.patterns_decomposed, 3u);
  EXPECT_EQ(r.stats.dot_star_splits, 4u);
  EXPECT_EQ(r.program.memory_bits, 4u);
}

TEST(PaperTable3, FilterProgramMatchesPaper) {
  // Table III (with the chain bit the running text describes):
  //   vi:    Set b0          emacs: Test b0 to Match
  //   bsd:   Set b1          gnu:   Test b1 to Match
  //   abc:   Set b2          mm?o:  Test b2 to Set b3
  //   xyz:   Test b3 to Match
  const split::SplitResult r = split::split_patterns(compile_patterns(kR1));
  ASSERT_EQ(r.program.actions.size(), 7u);
  const auto& a = r.program.actions;
  // pattern 1: pieces 0 (vi) and 1 (emacs)
  EXPECT_EQ(a[0].set, 0);
  EXPECT_EQ(a[0].test, kNone);
  EXPECT_EQ(a[1].test, 0);
  EXPECT_EQ(a[1].report, 1);
  // pattern 2: pieces 2 (bsd) and 3 (gnu)
  EXPECT_EQ(a[2].set, 1);
  EXPECT_EQ(a[3].test, 1);
  EXPECT_EQ(a[3].report, 2);
  // pattern 3: pieces 4 (abc), 5 (mm?o), 6 (xyz)
  EXPECT_EQ(a[4].set, 2);
  EXPECT_EQ(a[5].test, 2);
  EXPECT_EQ(a[5].set, 3);
  EXPECT_EQ(a[6].test, 3);
  EXPECT_EQ(a[6].report, 3);
}

TEST(PaperTable2, MatchesOnTheExampleString) {
  // Table II's input: R1 matches on emacs, on the second gnu, and on xyz.
  const std::string input = "vi.emacs.gnu.bsd.gnu.abc.mo.xyz";
  auto m = core::build_mfa(compile_patterns(kR1));
  ASSERT_TRUE(m.has_value());
  MfaScanner s(*m);
  const MatchVec got = sorted(s.scan(input));
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], (Match{1, 7}));   // emacs
  EXPECT_EQ(got[1], (Match{2, 19}));  // gnu (the one after bsd)
  EXPECT_EQ(got[2], (Match{3, 30}));  // xyz
  EXPECT_EQ(got, sorted(reference_matches(kR1, input)));
}

TEST(PaperTable2, FirstGnuIsFiltered) {
  // The raw piece DFA fires on both gnu occurrences; the filter must drop
  // the one before bsd. Count raw events directly on the character DFA.
  auto m = core::build_mfa(compile_patterns(kR1));
  ASSERT_TRUE(m.has_value());
  const std::string input = "vi.emacs.gnu.bsd.gnu.abc.mo.xyz";
  dfa::DfaScanner raw(m->character_dfa());
  const MatchVec raw_matches = raw.scan(input);
  // Raw: vi, emacs, gnu, bsd, gnu, abc, mo, xyz = 8 events.
  EXPECT_EQ(raw_matches.size(), 8u);
  MfaScanner s(*m);
  EXPECT_EQ(s.scan(input).size(), 3u);  // 5 of 8 filtered
}

TEST(PaperTable4, AlmostDotStarWalkthrough) {
  // Regex .*abc[^\n]*xyz on input "abc:\n:xyz\nabc:xyz\n" (Table IV):
  // raw events 1a,1b,1,1b,1a,1; only the final 1 survives the filter.
  const std::vector<std::string> pat = {".*abc[^\\n]*xyz"};
  auto m = core::build_mfa(compile_patterns(pat));
  ASSERT_TRUE(m.has_value());
  ASSERT_EQ(m->pieces().size(), 3u);
  const std::string input = "abc:\n:xyz\nabc:xyz\n";
  dfa::DfaScanner raw(m->character_dfa());
  // Table IV lists the six events 1a,1b,1,1b,1a,1; the input's trailing
  // newline produces a seventh (a final 1b clear) the table omits.
  EXPECT_EQ(raw.scan(input).size(), 7u);
  MfaScanner s(*m);
  const MatchVec got = s.scan(input);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].end, 16u);
  EXPECT_EQ(got, reference_matches(pat, input));
}

TEST(PaperSec4A, AbcBcdCounterexampleStaysCorrect) {
  // Sec. IV-A: .*abc.*bcd must NOT be decomposed (suffix bc = prefix bc);
  // input "abcd" must not match. Our splitter folds the boundary, so the
  // MFA still answers correctly.
  const std::vector<std::string> pat = {".*abc.*bcd"};
  auto m = core::build_mfa(compile_patterns(pat));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->pieces().size(), 1u);
  MfaScanner s(*m);
  EXPECT_TRUE(s.scan(std::string("abcd")).empty());
  EXPECT_EQ(s.scan(std::string("abc bcd")).size(), 1u);
}

TEST(PaperSec4B, BadXDecompositionAvoided) {
  // Sec. IV-B: .*abc[a-f]*xyz would generate a flood of clear events if
  // decomposed with X = [^a-f] (250 chars); the 128 threshold prevents it.
  const std::vector<std::string> pat = {".*abc[a-f]*xyz"};
  const split::SplitResult r = split::split_patterns(compile_patterns(pat));
  EXPECT_EQ(r.pieces.size(), 1u);
  // And matching still works, unsplit.
  auto m = core::build_mfa(compile_patterns(pat));
  ASSERT_TRUE(m.has_value());
  MfaScanner s(*m);
  EXPECT_EQ(s.scan(std::string("abcdefxyz")).size(), 1u);
  EXPECT_TRUE(s.scan(std::string("abc xyz")).empty());  // space not in [a-f]
}

TEST(PaperSec1C, StatelessFilteringWouldBeWrong) {
  // Sec. I-C: match 2 (gnu) is returned twice by R2 and must be filtered
  // once and passed once — only *stateful* filtering can do that. Verify
  // the two gnu events get opposite outcomes.
  const std::vector<std::string> pat = {".*bsd.*gnu"};
  auto m = core::build_mfa(compile_patterns(pat));
  ASSERT_TRUE(m.has_value());
  MfaScanner s(*m);
  const MatchVec got = s.scan(std::string("gnu.bsd.gnu"));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].end, 10u);  // second gnu only
}

}  // namespace
}  // namespace mfa
