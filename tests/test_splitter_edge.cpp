// Splitter edge cases beyond the paper's worked examples: separator-run
// collapsing, anchored interactions, alternation segments, and decomposed
// pieces of unusual shape.
#include <gtest/gtest.h>

#include "engine_test_util.h"
#include "mfa/mfa.h"
#include "regex/sample.h"
#include "split/splitter.h"
#include "util/rng.h"

namespace mfa::split {
namespace {

using filter::kNone;
using mfa::testing::compile_patterns;
using mfa::testing::reference_matches;
using mfa::testing::sorted;

SplitResult split(const std::vector<std::string>& sources, Options opts = {}) {
  return split_patterns(compile_patterns(sources), opts);
}

MatchVec mfa_scan(const std::vector<std::string>& pats, const std::string& input) {
  auto m = core::build_mfa(compile_patterns(pats));
  EXPECT_TRUE(m.has_value());
  core::MfaScanner s(*m);
  return sorted(s.scan(input));
}

TEST(SeparatorRuns, AdjacentDotStarsCollapse) {
  const SplitResult r = split({".*abc.*.*xyz"});
  EXPECT_EQ(r.pieces.size(), 2u);
  EXPECT_EQ(r.stats.dot_star_splits, 1u);
}

TEST(SeparatorRuns, DotStarAbsorbsAlmostDotStar) {
  // `.*[^X]*` == `.*`: one dot-star boundary, no clear piece.
  const SplitResult r = split({".*abc.*[^\\n]*xyz"});
  EXPECT_EQ(r.pieces.size(), 2u);
  EXPECT_EQ(r.stats.almost_dot_star_splits, 0u);
}

TEST(SeparatorRuns, SameXAlmostDotStarsCollapse) {
  const SplitResult r = split({".*abc[^\\n]*[^\\n]*xyz"});
  EXPECT_EQ(r.pieces.size(), 3u);
  EXPECT_EQ(r.stats.almost_dot_star_splits, 1u);
}

TEST(SeparatorRuns, MixedXAlmostDotStarsFold) {
  // [^a]*[^b]* is not a single separator: fold, keep the pattern whole.
  const SplitResult r = split({".*zq1[^a]*[^b]*zq2"});
  EXPECT_EQ(r.pieces.size(), 1u);
}

TEST(SeparatorRuns, GapPlusAdsFolds) {
  const SplitResult r = split({".*zq1.{3,}[^\\n]*zq2"});
  EXPECT_EQ(r.pieces.size(), 1u);
  // Semantics must still be exact when folded.
  const std::vector<std::string> pat = {".*ab.{2,}[^\\n]*yz"};
  for (const std::string input : std::vector<std::string>{
           "ab..yz", "ab.yz", "abyz", "ab...\nyz", "ab\n..yz"}) {
    EXPECT_EQ(mfa_scan(pat, input), sorted(reference_matches(pat, input))) << input;
  }
}

TEST(Segments, AlternationSegmentsSplit) {
  // Segments may be arbitrary regexes, not just strings.
  const SplitResult r = split({".*(cat|dog)qq.*(fish|bird)ww"});
  EXPECT_EQ(r.pieces.size(), 2u);
  const std::vector<std::string> pat = {".*(cat|dog)qq.*(fish|bird)ww"};
  EXPECT_EQ(mfa_scan(pat, "dogqq then birdww").size(), 1u);
  EXPECT_TRUE(mfa_scan(pat, "birdww then dogqq").empty());
  EXPECT_EQ(mfa_scan(pat, "catqq fishww dogqq birdww").size(), 2u);
}

TEST(Segments, OverlapAcrossAlternationBranches) {
  // Some branch pair overlaps (suffix "fg" = prefix of "fgh"): reject.
  const SplitResult r = split({".*(abc|efg).*(xyz|fgh)"});
  EXPECT_EQ(r.pieces.size(), 1u);
}

TEST(Segments, CountedRepeatSegments) {
  const std::vector<std::string> pat = {".*a{3}b.*c{2}d"};
  const SplitResult r = split(pat);
  EXPECT_EQ(r.pieces.size(), 2u);
  EXPECT_EQ(mfa_scan(pat, "aaab ccd").size(), 1u);
  EXPECT_TRUE(mfa_scan(pat, "aab ccd").empty());
  EXPECT_TRUE(mfa_scan(pat, "ccd aaab").empty());
}

TEST(Anchored, AnchoredDotStarHeadBecomesUnanchored) {
  // ^.*A == unanchored A.
  const SplitResult r = split({"^.*abc"});
  ASSERT_EQ(r.pieces.size(), 1u);
  EXPECT_FALSE(r.pieces[0].regex.anchored);
  EXPECT_EQ(mfa_scan({"^.*abc"}, "xxabc").size(), 1u);
}

TEST(Anchored, AnchoredAdsHeadKept) {
  const std::vector<std::string> pat = {"^[^\\n]*abc.*xyz"};
  const SplitResult r = split(pat);
  ASSERT_GE(r.pieces.size(), 2u);
  EXPECT_TRUE(r.pieces[0].regex.anchored);
  // abc on first line then xyz anywhere.
  EXPECT_EQ(mfa_scan(pat, "..abc..xyz").size(), 1u);
  EXPECT_TRUE(mfa_scan(pat, "..\nabc..xyz").empty());
}

TEST(Anchored, FullyAnchoredChain) {
  const std::vector<std::string> pat = {"^hdr.*mid.*end"};
  for (const std::string input : std::vector<std::string>{
           "hdr mid end", "xhdr mid end", "hdr end mid", "mid hdr end",
           "hdr mid mid end end"}) {
    EXPECT_EQ(mfa_scan(pat, input), sorted(reference_matches(pat, input))) << input;
  }
}

TEST(MultiPattern, SharedSegmentsAcrossPatterns) {
  // Two patterns sharing the literal "ab" must keep independent bits.
  const std::vector<std::string> pats = {".*ab.*cd", ".*ab.*ef"};
  const SplitResult r = split(pats);
  ASSERT_EQ(r.pieces.size(), 4u);
  EXPECT_NE(r.program.actions[0].set, r.program.actions[2].set);
  for (const std::string input : std::vector<std::string>{
           "ab cd", "ab ef", "ab cd ef", "cd ef ab", "ab ab cd ef"}) {
    EXPECT_EQ(mfa_scan(pats, input), sorted(reference_matches(pats, input))) << input;
  }
}

TEST(MultiPattern, DuplicatePatternsBothReport) {
  const std::vector<std::string> pats = {".*ab.*cd", ".*ab.*cd"};
  const MatchVec got = mfa_scan(pats, "ab cd");
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].id, 1u);
  EXPECT_EQ(got[1].id, 2u);
  EXPECT_EQ(got[0].end, got[1].end);
}

TEST(PieceShape, WholePatternDotStar) {
  // ".*" alone: matches at every position; stays a single plain piece.
  const std::vector<std::string> pat = {".*"};
  const SplitResult r = split(pat);
  EXPECT_EQ(r.pieces.size(), 1u);
  EXPECT_EQ(mfa_scan(pat, "abc").size(), 3u);
}

TEST(PieceShape, SingleByteSegments) {
  const std::vector<std::string> pat = {".*q.*z"};
  const SplitResult r = split(pat);
  EXPECT_EQ(r.pieces.size(), 2u);
  for (const std::string input :
       std::vector<std::string>{"qz", "zq", "q..z", "z..q..z", "qq zz"}) {
    EXPECT_EQ(mfa_scan(pat, input), sorted(reference_matches(pat, input))) << input;
  }
}

TEST(PieceShape, CaseInsensitivePattern) {
  const std::vector<std::string> pat = {"/.*AbC.*xYz/i"};
  const SplitResult r = split(pat);
  EXPECT_EQ(r.pieces.size(), 2u);
  EXPECT_EQ(mfa_scan(pat, "ABC XYZ").size(), 1u);
  EXPECT_EQ(mfa_scan(pat, "abc xyz").size(), 1u);
  EXPECT_TRUE(mfa_scan(pat, "abd xyz").empty());
}

TEST(Ordering, SetAndTestAtSamePositionAcrossPatterns) {
  // Pattern 2's B co-ends with pattern 1's A; bits are independent so both
  // behave exactly like the reference.
  const std::vector<std::string> pats = {".*abcd.*efgh", ".*ab.*cd"};
  for (const std::string input : std::vector<std::string>{
           "abcd efgh", "ab cd", "abcd", "ababcdcd efgh"}) {
    EXPECT_EQ(mfa_scan(pats, input), sorted(reference_matches(pats, input))) << input;
  }
}

TEST(Ordering, CoEndingAandBNotAFalseMatch) {
  // B = bc is a suffix of A = abc: they co-end on "abc". The original
  // .*bc.*abc does not match "abc" (abc must come after bc), and the
  // tests-before-sets ordering preserves that.
  const std::vector<std::string> pat = {".*bc.*abc"};
  EXPECT_TRUE(mfa_scan(pat, "abc").empty());
  EXPECT_EQ(mfa_scan(pat, "bc abc").size(), 1u);
  EXPECT_EQ(mfa_scan(pat, "abc abc").size(), 1u);  // first abc supplies bc
}

class RandomSplitStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomSplitStress, DecomposedAlwaysEqualsReference) {
  util::Rng rng(GetParam() * 7919);
  // Random patterns over a SMALL alphabet so overlaps/rejections are
  // frequent and both splitter paths (split and fold) get exercised.
  std::vector<std::string> pats;
  const int npat = 2 + static_cast<int>(rng.below(3));
  for (int i = 0; i < npat; ++i) {
    const auto word = [&] {
      std::string w;
      for (int j = 1 + static_cast<int>(rng.below(3)); j > 0; --j)
        w += static_cast<char>('a' + rng.below(3));
      return w;
    };
    std::string p = ".*" + word();
    for (int link = static_cast<int>(rng.below(3)); link > 0; --link) {
      p += rng.chance(0.5) ? ".*" : "[^\\n]*";
      p += word();
    }
    pats.push_back(std::move(p));
  }
  const auto inputs = compile_patterns(pats);
  auto m = core::build_mfa(inputs);
  ASSERT_TRUE(m.has_value());
  const nfa::Nfa reference = nfa::build_nfa(inputs);
  for (int round = 0; round < 25; ++round) {
    std::string input;
    for (int i = 6 + static_cast<int>(rng.below(24)); i > 0; --i)
      input += rng.chance(0.1) ? '\n' : static_cast<char>('a' + rng.below(3));
    core::MfaScanner ms(*m);
    nfa::NfaScanner ns(reference);
    ASSERT_EQ(sorted(ms.scan(input)), sorted(ns.scan(input)))
        << "input: " << input << " patterns: " << pats[0];
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSplitStress,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace mfa::split
