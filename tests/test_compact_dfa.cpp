#include "dfa/compact.h"

#include <gtest/gtest.h>

#include "engine_test_util.h"
#include "patterns/builtin.h"
#include "regex/sample.h"
#include "util/rng.h"

namespace mfa::dfa {
namespace {

using mfa::testing::compile_patterns;
using mfa::testing::sorted;

Dfa build(const std::vector<std::string>& sources) {
  auto d = build_dfa(nfa::build_nfa(compile_patterns(sources)));
  EXPECT_TRUE(d.has_value());
  return *std::move(d);
}

TEST(CompactDfa, TransitionFunctionIdentical) {
  const Dfa dense = build({".*abc.*xyz", ".*q[0-9]+w", "^head[^\\n]*tail"});
  const CompactDfa compact(dense);
  ASSERT_EQ(compact.state_count(), dense.state_count());
  for (std::uint32_t s = 0; s < dense.state_count(); ++s) {
    for (unsigned b = 0; b < 256; ++b) {
      ASSERT_EQ(compact.next(s, static_cast<unsigned char>(b)),
                dense.next(s, static_cast<unsigned char>(b)))
          << "state " << s << " byte " << b;
    }
  }
}

TEST(CompactDfa, ScanEquivalence) {
  const std::vector<std::string> pats = {".*abc.*xyz", ".*lonely", "^anch.*ored"};
  const Dfa dense = build(pats);
  const CompactDfa compact(dense);
  util::Rng rng(12);
  const auto inputs = compile_patterns(pats);
  for (int i = 0; i < 100; ++i) {
    std::string input = rng.lower_string(rng.below(30));
    if (rng.chance(0.7))
      input += regex::sample_match(inputs[rng.below(inputs.size())].regex, rng);
    input += rng.lower_string(rng.below(10));
    DfaScanner a(dense);
    CompactDfaScanner b(compact);
    EXPECT_EQ(sorted(a.scan(input)), sorted(b.scan(input))) << input;
  }
}

TEST(CompactDfa, CompressesIdsStyleAutomata) {
  // `.*`-prefixed pattern sets transition like the root on most bytes, so
  // the sparse layout must be much smaller than the dense one.
  const auto set = patterns::set_by_name("S24");
  auto d = build_dfa(nfa::build_nfa(set.patterns));
  ASSERT_TRUE(d.has_value());
  const CompactDfa compact(*d);
  EXPECT_LT(compact.compression_vs_dense(*d), 0.5);
  EXPECT_LT(compact.entry_count(),
            static_cast<std::size_t>(d->state_count()) * d->column_count() / 2);
}

TEST(CompactDfa, AcceptsPreserved) {
  const Dfa dense = build({"aa", "bb", "aa|bb"});
  const CompactDfa compact(dense);
  ASSERT_EQ(compact.accepting_state_count(), dense.accepting_state_count());
  for (std::uint32_t s = 0; s < dense.accepting_state_count(); ++s) {
    const auto [df, dl] = dense.accepts(s);
    const auto [cf, cl] = compact.accepts(s);
    EXPECT_TRUE(std::equal(df, dl, cf, cl)) << s;
  }
}

TEST(CompactDfa, ChunkedFeedKeepsState) {
  const Dfa dense = build({".*begin.*end"});
  const CompactDfa compact(dense);
  CompactDfaScanner s(compact);
  CollectingSink sink;
  const std::string a = "..begi";
  const std::string b = "n..en";
  const std::string c = "d";
  s.feed(reinterpret_cast<const std::uint8_t*>(a.data()), a.size(), 0, sink);
  s.feed(reinterpret_cast<const std::uint8_t*>(b.data()), b.size(), a.size(), sink);
  s.feed(reinterpret_cast<const std::uint8_t*>(c.data()), c.size(), a.size() + b.size(),
         sink);
  ASSERT_EQ(sink.matches.size(), 1u);
  EXPECT_EQ(sink.matches[0].end, 11u);
}

}  // namespace
}  // namespace mfa::dfa
