#include "flow/flow.h"

#include <gtest/gtest.h>

#include "engine_test_util.h"
#include "mfa/mfa.h"

namespace mfa::flow {
namespace {

using mfa::testing::compile_patterns;

core::Mfa build(const std::vector<std::string>& sources) {
  auto m = core::build_mfa(compile_patterns(sources));
  EXPECT_TRUE(m.has_value());
  return *std::move(m);
}

Packet make_packet(const FlowKey& key, std::uint64_t seq, const std::string& bytes) {
  return Packet{key, seq, reinterpret_cast<const std::uint8_t*>(bytes.data()),
                static_cast<std::uint32_t>(bytes.size())};
}

TEST(FlowKey, EqualityAndHash) {
  const FlowKey a{1, 2, 3, 4, 6};
  const FlowKey b{1, 2, 3, 4, 6};
  const FlowKey c{1, 2, 3, 5, 6};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(FlowKeyHash{}(a), FlowKeyHash{}(b));
  EXPECT_NE(FlowKeyHash{}(a), FlowKeyHash{}(c));  // overwhelmingly likely
}

TEST(FlowInspector, SingleFlowInOrder) {
  const core::Mfa m = build({".*abc.*xyz"});
  FlowInspector<core::Mfa> insp{m};
  CollectingSink sink;
  const FlowKey key{10, 20, 1000, 80, 6};
  const std::string p1 = "ab";
  const std::string p2 = "c..x";
  const std::string p3 = "yz";
  insp.packet(make_packet(key, 0, p1), sink);
  insp.packet(make_packet(key, 2, p2), sink);
  insp.packet(make_packet(key, 6, p3), sink);
  ASSERT_EQ(sink.matches.size(), 1u);
  EXPECT_EQ(sink.matches[0].end, 7u);
  EXPECT_EQ(insp.flow_count(), 1u);
}

TEST(FlowInspector, CrossFlowIsolation) {
  // abc in flow A and xyz in flow B must NOT combine into a match.
  const core::Mfa m = build({".*abc.*xyz"});
  FlowInspector<core::Mfa> insp{m};
  CollectingSink sink;
  const FlowKey a{1, 2, 3, 4, 6};
  const FlowKey b{5, 6, 7, 8, 6};
  insp.packet(make_packet(a, 0, "abc..."), sink);
  insp.packet(make_packet(b, 0, "...xyz"), sink);
  EXPECT_TRUE(sink.matches.empty());
  EXPECT_EQ(insp.flow_count(), 2u);
  // And each flow completes independently.
  insp.packet(make_packet(a, 6, "xyz"), sink);
  ASSERT_EQ(sink.matches.size(), 1u);
  EXPECT_EQ(sink.matches[0].end, 8u);
}

TEST(FlowInspector, InterleavedFlows) {
  const core::Mfa m = build({".*abc.*xyz"});
  FlowInspector<core::Mfa> insp{m};
  CollectingSink sink;
  const FlowKey a{1, 2, 3, 4, 6};
  const FlowKey b{5, 6, 7, 8, 6};
  insp.packet(make_packet(a, 0, "ab"), sink);
  insp.packet(make_packet(b, 0, "abc"), sink);
  insp.packet(make_packet(a, 2, "c xyz"), sink);
  insp.packet(make_packet(b, 3, " xyz"), sink);
  EXPECT_EQ(sink.matches.size(), 2u);
}

TEST(FlowInspector, OutOfOrderSegmentsReassembled) {
  const core::Mfa m = build({".*abcxyz"});
  FlowInspector<core::Mfa> insp{m};
  CollectingSink sink;
  const FlowKey key{1, 2, 3, 4, 6};
  insp.packet(make_packet(key, 3, "xyz"), sink);  // arrives first
  EXPECT_TRUE(sink.matches.empty());
  insp.packet(make_packet(key, 0, "abc"), sink);  // gap fills, both delivered
  ASSERT_EQ(sink.matches.size(), 1u);
  EXPECT_EQ(sink.matches[0].end, 5u);
}

TEST(FlowInspector, RetransmissionOverlapSkipped) {
  const core::Mfa m = build({".*abcd"});
  FlowInspector<core::Mfa> insp{m};
  CollectingSink sink;
  const FlowKey key{1, 2, 3, 4, 6};
  insp.packet(make_packet(key, 0, "abc"), sink);
  insp.packet(make_packet(key, 1, "bcd"), sink);  // overlaps 2 bytes
  ASSERT_EQ(sink.matches.size(), 1u);
  EXPECT_EQ(sink.matches[0].end, 3u);
  // Full duplicate: no double delivery.
  insp.packet(make_packet(key, 0, "abcd"), sink);
  EXPECT_EQ(sink.matches.size(), 1u);
}

TEST(FlowInspector, EvictDropsContext) {
  const core::Mfa m = build({".*abc.*xyz"});
  FlowInspector<core::Mfa> insp{m};
  CollectingSink sink;
  const FlowKey key{1, 2, 3, 4, 6};
  insp.packet(make_packet(key, 0, "abc"), sink);
  insp.evict(key);
  EXPECT_EQ(insp.flow_count(), 0u);
  // A fresh context starts at offset 0; the earlier abc is forgotten.
  insp.packet(make_packet(key, 0, "xyz"), sink);
  EXPECT_TRUE(sink.matches.empty());
}

TEST(FlowInspector, ManyFlows) {
  const core::Mfa m = build({".*needle"});
  FlowInspector<core::Mfa> insp{m};
  CountingSink sink;
  for (std::uint32_t i = 0; i < 500; ++i) {
    const FlowKey key{i, 2, 3, 4, 6};
    insp.packet(make_packet(key, 0, "has a needle inside"), sink);
  }
  EXPECT_EQ(sink.count, 500u);
  EXPECT_EQ(insp.flow_count(), 500u);
  insp.clear();
  EXPECT_EQ(insp.flow_count(), 0u);
}

}  // namespace
}  // namespace mfa::flow

namespace mfa::flow {
namespace {

TEST(FlowInspectorLru, CapEvictsLeastRecentlyActive) {
  auto m = core::build_mfa(mfa::testing::compile_patterns({".*abc.*xyz"}));
  ASSERT_TRUE(m.has_value());
  FlowInspector<core::Mfa> insp{*m, /*max_flows=*/2};
  CollectingSink sink;
  const FlowKey f1{1, 0, 0, 0, 6}, f2{2, 0, 0, 0, 6}, f3{3, 0, 0, 0, 6};
  insp.packet(Packet{f1, 0, reinterpret_cast<const std::uint8_t*>("abc"), 3}, sink);
  insp.packet(Packet{f2, 0, reinterpret_cast<const std::uint8_t*>("abc"), 3}, sink);
  // Touch f1 so f2 becomes the oldest, then open f3: f2 must be evicted.
  insp.packet(Packet{f1, 3, reinterpret_cast<const std::uint8_t*>("..."), 3}, sink);
  insp.packet(Packet{f3, 0, reinterpret_cast<const std::uint8_t*>("abc"), 3}, sink);
  EXPECT_EQ(insp.flow_count(), 2u);
  EXPECT_EQ(insp.evicted_count(), 1u);
  // f1 kept its context: xyz completes the match.
  insp.packet(Packet{f1, 6, reinterpret_cast<const std::uint8_t*>("xyz"), 3}, sink);
  EXPECT_EQ(sink.matches.size(), 1u);
  // f2 lost its context: a fresh xyz alone must not match.
  insp.packet(Packet{f2, 0, reinterpret_cast<const std::uint8_t*>("xyz"), 3}, sink);
  EXPECT_EQ(sink.matches.size(), 1u);
}

TEST(FlowInspectorLru, UnboundedByDefault) {
  auto m = core::build_mfa(mfa::testing::compile_patterns({".*needle"}));
  ASSERT_TRUE(m.has_value());
  FlowInspector<core::Mfa> insp{*m};
  CountingSink sink;
  for (std::uint32_t i = 0; i < 100; ++i)
    insp.packet(Packet{FlowKey{i, 0, 0, 0, 6}, 0,
                       reinterpret_cast<const std::uint8_t*>("x"), 1},
                sink);
  EXPECT_EQ(insp.flow_count(), 100u);
  EXPECT_EQ(insp.evicted_count(), 0u);
}

}  // namespace
}  // namespace mfa::flow
