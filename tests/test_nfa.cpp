#include "nfa/nfa.h"

#include <gtest/gtest.h>

#include "engine_test_util.h"

namespace mfa::nfa {
namespace {

using mfa::testing::compile_patterns;
using mfa::testing::sorted;

MatchVec scan(const std::vector<std::string>& sources, const std::string& input) {
  const Nfa n = build_nfa(compile_patterns(sources));
  NfaScanner s(n);
  return sorted(s.scan(input));
}

TEST(Nfa, SimpleLiteralUnanchored) {
  const MatchVec m = scan({"abc"}, "xxabcyyabc");
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m[0], (Match{1, 4}));
  EXPECT_EQ(m[1], (Match{1, 9}));
}

TEST(Nfa, AnchoredOnlyAtStart) {
  EXPECT_EQ(scan({"^abc"}, "abcabc").size(), 1u);
  EXPECT_EQ(scan({"^abc"}, "xabc").size(), 0u);
  EXPECT_EQ(scan({"^abc"}, "abc")[0], (Match{1, 2}));
}

TEST(Nfa, Alternation) {
  const MatchVec m = scan({"cat|dog"}, "a dog and a cat");
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m[0].end, 4u);
  EXPECT_EQ(m[1].end, 14u);
}

TEST(Nfa, StarAndPlus) {
  // ab*c: abbbc and ac both match.
  EXPECT_EQ(scan({"ab*c"}, "abbbc").size(), 1u);
  EXPECT_EQ(scan({"ab*c"}, "ac").size(), 1u);
  EXPECT_EQ(scan({"ab+c"}, "ac").size(), 0u);
  EXPECT_EQ(scan({"ab+c"}, "abc").size(), 1u);
}

TEST(Nfa, CountedRepeat) {
  EXPECT_EQ(scan({"a{3}"}, "aa").size(), 0u);
  EXPECT_EQ(scan({"a{3}"}, "aaa").size(), 1u);
  // In "aaaa", a{3} ends at offsets 2 and 3.
  EXPECT_EQ(scan({"a{3}"}, "aaaa").size(), 2u);
  EXPECT_EQ(scan({"a{2,3}"}, "aaa").size(), 2u);
}

TEST(Nfa, DotStarPattern) {
  const MatchVec m = scan({".*ab.*cd"}, "ab__cd__cd");
  // cd ends at 5 and 9, both after ab.
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m[0].end, 5u);
  EXPECT_EQ(m[1].end, 9u);
  EXPECT_EQ(scan({".*ab.*cd"}, "cd__ab").size(), 0u);
}

TEST(Nfa, AlmostDotStarRespectsLineBreaks) {
  EXPECT_EQ(scan({"ab[^\\n]*cd"}, "ab xx cd").size(), 1u);
  EXPECT_EQ(scan({"ab[^\\n]*cd"}, "ab x\nx cd").size(), 0u);
}

TEST(Nfa, MultiPatternIdsIndependent) {
  const MatchVec m = scan({"foo", "bar"}, "foobar");
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m[0], (Match{1, 2}));
  EXPECT_EQ(m[1], (Match{2, 5}));
}

TEST(Nfa, OneEventPerIdPerPosition) {
  // Both branches end at the same position: one event only.
  const MatchVec m = scan({"(ab|b)c"}, "abc");
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m[0], (Match{1, 2}));
}

TEST(Nfa, OverlappingMatchesAllReported) {
  const MatchVec m = scan({"aa"}, "aaaa");
  EXPECT_EQ(m.size(), 3u);  // ends at 1, 2, 3
}

TEST(Nfa, CaseInsensitiveFlag) {
  EXPECT_EQ(scan({"/abc/i"}, "xAbCx").size(), 1u);
  EXPECT_EQ(scan({"abc"}, "xAbCx").size(), 0u);
}

TEST(Nfa, FeedInChunksMatchesWholeScan) {
  const std::vector<std::string> pats = {".*ab.*cd", "xy+z"};
  const std::string input = "abxyzcd xyyyz ab cd";
  const Nfa n = build_nfa(compile_patterns(pats));
  NfaScanner whole(n);
  const MatchVec expect = whole.scan(input);

  NfaScanner chunked(n);
  chunked.reset();
  CollectingSink sink;
  const auto* data = reinterpret_cast<const std::uint8_t*>(input.data());
  std::size_t pos = 0;
  for (const std::size_t len : {3u, 1u, 7u, 5u, 3u}) {
    chunked.feed(data + pos, len, pos, sink);
    pos += len;
  }
  EXPECT_EQ(sorted(sink.matches), sorted(expect));
}

TEST(Nfa, StateAndImageAccounting) {
  const Nfa n = build_nfa(compile_patterns({"abc", "de*f"}));
  EXPECT_GT(n.state_count(), 4u);
  EXPECT_GT(n.memory_image_bytes(), 0u);
  EXPECT_EQ(n.max_match_id(), 2u);
  EXPECT_FALSE(n.distinct_labels().empty());
}

TEST(Nfa, ContextBytesTracksStateCount) {
  const Nfa n = build_nfa(compile_patterns({"abcdefghij"}));
  NfaScanner s(n);
  EXPECT_EQ(s.context_bytes(), ((n.state_count() + 63) / 64) * 8);
}

TEST(Nfa, EmptyInputNoMatches) {
  EXPECT_TRUE(scan({"abc"}, "").empty());
}

TEST(Nfa, NulBytesInInput) {
  const std::string input{"a\0b", 3};
  EXPECT_EQ(scan({"a\\0b"}, input).size(), 1u);
}

}  // namespace
}  // namespace mfa::nfa
