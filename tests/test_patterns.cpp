#include "patterns/builtin.h"

#include <gtest/gtest.h>

#include "split/splitter.h"

namespace mfa::patterns {
namespace {

TEST(Patterns, AllSevenSetsPresent) {
  const auto sets = builtin_sets();
  ASSERT_EQ(sets.size(), 7u);
  EXPECT_EQ(sets[0].name, "B217p");
  EXPECT_EQ(sets[1].name, "C7p");
  EXPECT_EQ(sets[6].name, "S34");
}

TEST(Patterns, RegexCountsMatchTableV) {
  EXPECT_EQ(make_b217p().patterns.size(), 224u);
  EXPECT_EQ(make_c7p().patterns.size(), 11u);
  EXPECT_EQ(make_c8().patterns.size(), 8u);
  EXPECT_EQ(make_c10().patterns.size(), 10u);
  EXPECT_EQ(make_s24().patterns.size(), 24u);
  EXPECT_EQ(make_s31p().patterns.size(), 40u);
  EXPECT_EQ(make_s34().patterns.size(), 34u);
}

TEST(Patterns, DeterministicGeneration) {
  const PatternSet a = make_c7p();
  const PatternSet b = make_c7p();
  ASSERT_EQ(a.sources.size(), b.sources.size());
  for (std::size_t i = 0; i < a.sources.size(); ++i) EXPECT_EQ(a.sources[i], b.sources[i]);
}

TEST(Patterns, IdsAreDenseFromOne) {
  const PatternSet s = make_s24();
  for (std::size_t i = 0; i < s.patterns.size(); ++i)
    EXPECT_EQ(s.patterns[i].id, i + 1);
}

TEST(Patterns, CSetsAreDotStarHeavy) {
  // Sec. V-A: C patterns use dot-star/almost-dot-star heavily.
  for (const auto& set : {make_c7p(), make_c8(), make_c10()}) {
    const split::SplitResult r = split::split_patterns(set.patterns);
    EXPECT_GT(r.stats.patterns_decomposed * 2, set.patterns.size()) << set.name;
  }
}

TEST(Patterns, SSetsHaveAnchoredComponents) {
  // Sec. V-A: S patterns often have an anchored component.
  for (const auto& set : {make_s24(), make_s31p(), make_s34()}) {
    std::size_t anchored = 0;
    for (const auto& p : set.patterns) anchored += p.regex.anchored ? 1 : 0;
    EXPECT_GT(anchored, set.patterns.size() / 4) << set.name;
  }
}

TEST(Patterns, B217pIsMostlyStrings) {
  const PatternSet set = make_b217p();
  const split::SplitResult r = split::split_patterns(set.patterns);
  // Most patterns pass through whole; a minority decompose.
  EXPECT_LT(r.stats.patterns_decomposed, 40u);
  EXPECT_GT(r.stats.patterns_decomposed, 5u);
}

TEST(Patterns, SetByNameAndCustom) {
  EXPECT_EQ(set_by_name("C10").patterns.size(), 10u);
  const PatternSet custom = make_custom("mini", {".*ab.*cd", ".*ef"});
  EXPECT_EQ(custom.patterns.size(), 2u);
  EXPECT_EQ(custom.patterns[1].id, 2u);
}

}  // namespace
}  // namespace mfa::patterns
