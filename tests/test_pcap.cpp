// Pcap reader tests over hand-assembled capture bytes: a tiny writer
// builds Ethernet/IPv4/TCP-UDP frames so every parsing path is exercised
// without binary fixtures.
#include "trace/pcap.h"

#include <gtest/gtest.h>

#include "engine_test_util.h"
#include "mfa/mfa.h"

namespace mfa::trace {
namespace {

/// Minimal pcap writer used only by these tests.
class PcapBuilder {
 public:
  explicit PcapBuilder(bool swapped = false) : swapped_(swapped) {
    u32(0xa1b2c3d4);  // u32 applies the byte swap for swapped files
    u16(2);
    u16(4);
    u32(0);  // thiszone
    u32(0);  // sigfigs
    u32(65535);
    u32(1);  // Ethernet
  }

  void tcp_packet(const flow::FlowKey& key, std::uint32_t seq, std::uint8_t flags,
                  const std::string& payload) {
    std::vector<std::uint8_t> l4(20);
    be16(&l4[0], key.src_port);
    be16(&l4[2], key.dst_port);
    be32(&l4[4], seq);
    l4[12] = 5 << 4;  // data offset 20
    l4[13] = flags;
    append_frame(key, 6, l4, payload);
  }

  void udp_packet(const flow::FlowKey& key, const std::string& payload) {
    std::vector<std::uint8_t> l4(8);
    be16(&l4[0], key.src_port);
    be16(&l4[2], key.dst_port);
    be16(&l4[4], static_cast<std::uint16_t>(8 + payload.size()));
    append_frame(key, 17, l4, payload);
  }

  void non_ip_frame() {
    std::vector<std::uint8_t> frame(60, 0);
    frame[12] = 0x08;
    frame[13] = 0x06;  // ARP
    record(frame);
  }

  void raw_record(const std::vector<std::uint8_t>& frame) { record(frame); }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return out_; }

 private:
  void append_frame(const flow::FlowKey& key, std::uint8_t proto,
                    const std::vector<std::uint8_t>& l4, const std::string& payload) {
    std::vector<std::uint8_t> frame(14);
    frame[12] = 0x08;  // IPv4 ethertype
    std::vector<std::uint8_t> ip(20);
    ip[0] = 0x45;
    be16(&ip[2], static_cast<std::uint16_t>(20 + l4.size() + payload.size()));
    ip[8] = 64;
    ip[9] = proto;
    be32(&ip[12], key.src_ip);
    be32(&ip[16], key.dst_ip);
    frame.insert(frame.end(), ip.begin(), ip.end());
    frame.insert(frame.end(), l4.begin(), l4.end());
    frame.insert(frame.end(), payload.begin(), payload.end());
    record(frame);
  }

  void record(const std::vector<std::uint8_t>& frame) {
    u32(0);  // ts sec
    u32(0);  // ts usec
    u32(static_cast<std::uint32_t>(frame.size()));
    u32(static_cast<std::uint32_t>(frame.size()));
    out_.insert(out_.end(), frame.begin(), frame.end());
  }

  static void be16(std::uint8_t* p, std::uint16_t v) {
    p[0] = static_cast<std::uint8_t>(v >> 8);
    p[1] = static_cast<std::uint8_t>(v);
  }
  static void be32(std::uint8_t* p, std::uint32_t v) {
    p[0] = static_cast<std::uint8_t>(v >> 24);
    p[1] = static_cast<std::uint8_t>(v >> 16);
    p[2] = static_cast<std::uint8_t>(v >> 8);
    p[3] = static_cast<std::uint8_t>(v);
  }

  void u16(std::uint16_t v) {
    if (swapped_) v = static_cast<std::uint16_t>((v << 8) | (v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v));
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    if (swapped_)
      v = ((v & 0xff) << 24) | ((v & 0xff00) << 8) | ((v >> 8) & 0xff00) | (v >> 24);
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  bool swapped_;
  std::vector<std::uint8_t> out_;
};

const flow::FlowKey kFlow{0x0a000001, 0x0a000002, 40000, 80, 6};

TEST(Pcap, RejectsGarbage) {
  const std::uint8_t junk[] = "this is not a pcap file";
  const PcapResult r = read_pcap_buffer(junk, sizeof junk);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("magic"), std::string::npos);
}

TEST(Pcap, TcpStreamWithSyn) {
  PcapBuilder b;
  b.tcp_packet(kFlow, 1000, 0x02, "");        // SYN, consumes seq 1000
  b.tcp_packet(kFlow, 1001, 0x10, "hello ");  // first data at rel offset 0
  b.tcp_packet(kFlow, 1007, 0x10, "world");
  const PcapResult r = read_pcap_buffer(b.bytes().data(), b.bytes().size());
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.stats.frames, 3u);
  EXPECT_EQ(r.stats.payload_packets, 2u);
  EXPECT_EQ(r.stats.skipped_empty, 1u);  // the bare SYN
  ASSERT_EQ(r.trace.packet_count(), 2u);
  EXPECT_EQ(r.trace.packet(0).seq, 0u);
  EXPECT_EQ(r.trace.packet(1).seq, 6u);
  EXPECT_EQ(r.trace.payload_bytes(), 11u);
}

TEST(Pcap, SwappedEndiannessAccepted) {
  PcapBuilder b(/*swapped=*/true);
  b.tcp_packet(kFlow, 5, 0, "data");
  const PcapResult r = read_pcap_buffer(b.bytes().data(), b.bytes().size());
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.trace.packet_count(), 1u);
}

TEST(Pcap, UdpDatagramsGetRunningOffsets) {
  flow::FlowKey udp = kFlow;
  udp.proto = 17;
  PcapBuilder b;
  b.udp_packet(udp, "aaaa");
  b.udp_packet(udp, "bb");
  const PcapResult r = read_pcap_buffer(b.bytes().data(), b.bytes().size());
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.trace.packet_count(), 2u);
  EXPECT_EQ(r.trace.packet(0).seq, 0u);
  EXPECT_EQ(r.trace.packet(1).seq, 4u);
}

TEST(Pcap, NonIpFramesSkipped) {
  PcapBuilder b;
  b.non_ip_frame();
  b.tcp_packet(kFlow, 0, 0, "x");
  const PcapResult r = read_pcap_buffer(b.bytes().data(), b.bytes().size());
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.stats.skipped_non_ip, 1u);
  EXPECT_EQ(r.trace.packet_count(), 1u);
}

TEST(Pcap, TruncatedRecordRejectedWithDiagnostic) {
  PcapBuilder b;
  b.tcp_packet(kFlow, 0, 0, "full packet");
  std::vector<std::uint8_t> bytes = b.bytes();
  // Append a record header claiming more bytes than exist: capture-level
  // damage is an error naming the frame, not a silent early stop.
  for (int i = 0; i < 8; ++i) bytes.push_back(0);
  for (const std::uint8_t v : {0xff, 0x00, 0x00, 0x00}) bytes.push_back(v);
  for (const std::uint8_t v : {0xff, 0x00, 0x00, 0x00}) bytes.push_back(v);
  const PcapResult r = read_pcap_buffer(bytes.data(), bytes.size());
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("frame 2"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("truncated"), std::string::npos) << r.error;
  // The packet parsed before the damage is still available for diagnosis.
  EXPECT_EQ(r.trace.packet_count(), 1u);
}

TEST(Pcap, ImplausibleRecordLengthRejected) {
  PcapBuilder b;
  b.tcp_packet(kFlow, 0, 0, "ok");
  std::vector<std::uint8_t> bytes = b.bytes();
  for (int i = 0; i < 8; ++i) bytes.push_back(0);
  for (const std::uint8_t v : {0xff, 0xff, 0xff, 0x7f}) bytes.push_back(v);
  for (const std::uint8_t v : {0xff, 0xff, 0xff, 0x7f}) bytes.push_back(v);
  // Pad so the file LOOKS long enough to keep parsing naively.
  bytes.resize(bytes.size() + 4096, 0);
  const PcapResult r = read_pcap_buffer(bytes.data(), bytes.size());
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("implausible record length"), std::string::npos)
      << r.error;
}

TEST(Pcap, TruncatedRecordHeaderRejected) {
  PcapBuilder b;
  b.tcp_packet(kFlow, 0, 0, "ok");
  std::vector<std::uint8_t> bytes = b.bytes();
  for (int i = 0; i < 7; ++i) bytes.push_back(0);  // 7 < 16-byte record header
  const PcapResult r = read_pcap_buffer(bytes.data(), bytes.size());
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("truncated record header"), std::string::npos)
      << r.error;
  EXPECT_EQ(r.trace.packet_count(), 1u);
}

TEST(Pcap, MalformedCorpusNeverCrashes) {
  // Corpus fuzz: every truncation prefix of a healthy capture, plus
  // deterministic byte corruptions, must parse without crashing or
  // over-reading (ASan job), and every failure must carry a diagnostic.
  PcapBuilder b;
  flow::FlowKey udp = kFlow;
  udp.proto = 17;
  b.tcp_packet(kFlow, 100, 0x02, "");
  b.tcp_packet(kFlow, 101, 0x10, "hello across ");
  b.non_ip_frame();
  b.udp_packet(udp, "datagram");
  b.tcp_packet(kFlow, 114, 0x10, "the stream");
  const std::vector<std::uint8_t> good = b.bytes();
  const PcapResult healthy = read_pcap_buffer(good.data(), good.size());
  ASSERT_TRUE(healthy.ok) << healthy.error;

  for (std::size_t len = 0; len <= good.size(); ++len) {
    const PcapResult r = read_pcap_buffer(good.data(), len, "trunc");
    if (!r.ok) {
      EXPECT_FALSE(r.error.empty()) << "truncated at " << len;
    }
    EXPECT_LE(r.trace.packet_count(), healthy.trace.packet_count());
  }

  // Single-byte corruptions at every offset (bit-flip and 0xff stomp):
  // lengths, ethertypes, IHL nibbles, UDP lengths, record headers...
  for (std::size_t pos = 0; pos < good.size(); ++pos) {
    for (const std::uint8_t stomp : {std::uint8_t{0xff}, std::uint8_t{0x80}}) {
      std::vector<std::uint8_t> bad = good;
      bad[pos] ^= stomp;
      const PcapResult r = read_pcap_buffer(bad.data(), bad.size(), "corrupt");
      if (!r.ok) {
        EXPECT_FALSE(r.error.empty()) << "corrupt byte " << pos;
      }
    }
  }
}

TEST(Pcap, OutOfOrderTcpReassembledByInspector) {
  // Data segment for offset 6 arrives before offset 0; the FlowInspector
  // must reassemble and the pattern spanning both must match.
  PcapBuilder b;
  b.tcp_packet(kFlow, 100, 0x02, "");        // SYN: base = 101
  b.tcp_packet(kFlow, 109, 0, "needle");     // rel 8
  b.tcp_packet(kFlow, 101, 0, "heres a ");   // rel 0, 8 bytes
  const PcapResult r = read_pcap_buffer(b.bytes().data(), b.bytes().size());
  ASSERT_TRUE(r.ok) << r.error;
  auto m = core::build_mfa(mfa::testing::compile_patterns({".*a needle"}));
  ASSERT_TRUE(m.has_value());
  flow::FlowInspector<core::Mfa> insp{*m};
  CollectingSink sink;
  r.trace.for_each_packet([&](const flow::Packet& p) { insp.packet(p, sink); });
  ASSERT_EQ(sink.matches.size(), 1u);
}

TEST(Pcap, EndToEndScanThroughMfa) {
  PcapBuilder b;
  flow::FlowKey other{0x0a000003, 0x0a000004, 5555, 80, 6};
  b.tcp_packet(kFlow, 0, 0, "GET /cmd");
  b.tcp_packet(other, 0, 0, "unrelated traffic");
  b.tcp_packet(kFlow, 8, 0, ".exe HTTP/1.0");
  const PcapResult r = read_pcap_buffer(b.bytes().data(), b.bytes().size());
  ASSERT_TRUE(r.ok);
  auto m = core::build_mfa(mfa::testing::compile_patterns({".*cmd\\.exe"}));
  ASSERT_TRUE(m.has_value());
  flow::FlowInspector<core::Mfa> insp{*m};
  CollectingSink sink;
  r.trace.for_each_packet([&](const flow::Packet& p) { insp.packet(p, sink); });
  ASSERT_EQ(sink.matches.size(), 1u);  // spans the two kFlow segments
}

TEST(Pcap, LongFlowOffsetsStayMonotonePast4GiB) {
  // Regression: rel used to be computed as a 32-bit difference, folding
  // stream offsets back to zero every 4 GiB. Hop forward in ~1.5 GiB steps
  // (each within the signed-32-bit unwrap window) until the cumulative
  // stream position passes 2^32 and check offsets keep growing.
  constexpr std::uint64_t kStep = 0x60000000;  // 1.5 GiB
  PcapBuilder b;
  for (std::uint64_t off = 0; off <= 3 * kStep; off += kStep)
    b.tcp_packet(kFlow, static_cast<std::uint32_t>(off), 0, "x");
  const PcapResult r = read_pcap_buffer(b.bytes().data(), b.bytes().size());
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.trace.packet_count(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(r.trace.packet(i).seq, i * kStep);
  EXPECT_GT(r.trace.packet(3).seq, std::uint64_t{1} << 32);  // 4.5 GiB
}

TEST(Pcap, SeqWrapAcrossZeroReassembles) {
  // A pattern spanning the 2^32 sequence wrap: segment one ends at wire
  // seq 0xffffffff, segment two starts at wire seq 3 after wrapping. The
  // unwrapped offsets must be contiguous so the inspector sees one stream.
  PcapBuilder b;
  b.tcp_packet(kFlow, 0xfffffff9, 0, "a need");  // wire seqs f9..fe
  b.tcp_packet(kFlow, 0xffffffff, 0, "le!");     // crosses zero
  const PcapResult r = read_pcap_buffer(b.bytes().data(), b.bytes().size());
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.trace.packet_count(), 2u);
  EXPECT_EQ(r.trace.packet(0).seq, 0u);
  EXPECT_EQ(r.trace.packet(1).seq, 6u);
  auto m = core::build_mfa(mfa::testing::compile_patterns({".*a needle"}));
  ASSERT_TRUE(m.has_value());
  flow::FlowInspector<core::Mfa> insp{*m};
  CollectingSink sink;
  r.trace.for_each_packet([&](const flow::Packet& p) { insp.packet(p, sink); });
  ASSERT_EQ(sink.matches.size(), 1u);
}

TEST(Pcap, KeepAliveBeforeBaseIsTrimmedNotWrapped) {
  // TCP keep-alives carry one garbage byte at seq base-1. The old 32-bit
  // subtraction wrapped that to a ~4 GiB offset, planting a phantom
  // far-future segment; it must be dropped (or front-trimmed) instead.
  PcapBuilder b;
  b.tcp_packet(kFlow, 1000, 0x02, "");   // SYN: base = 1001
  b.tcp_packet(kFlow, 1001, 0, "data");  // rel 0
  b.tcp_packet(kFlow, 1000, 0, "k");     // keep-alive probe at base-1
  b.tcp_packet(kFlow, 1000, 0, "kmore"); // retransmit overlapping base
  const PcapResult r = read_pcap_buffer(b.bytes().data(), b.bytes().size());
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.trace.packet_count(), 2u);
  EXPECT_EQ(r.trace.packet(0).seq, 0u);
  EXPECT_EQ(r.trace.packet(1).seq, 0u);  // trimmed to start at stream byte 0
  EXPECT_EQ(r.trace.packet(1).length, 4u);  // "more"
  // Nothing may land anywhere near the wrapped 32-bit offset.
  for (std::uint64_t i = 0; i < r.trace.packet_count(); ++i)
    EXPECT_LT(r.trace.packet(i).seq, 16u);
}

TEST(Pcap, MissingFileReported) {
  const PcapResult r = read_pcap("/nonexistent/capture.pcap");
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());
}

}  // namespace
}  // namespace mfa::trace
