file(REMOVE_RECURSE
  "CMakeFiles/mfa_dfa.dir/compact.cpp.o"
  "CMakeFiles/mfa_dfa.dir/compact.cpp.o.d"
  "CMakeFiles/mfa_dfa.dir/dfa.cpp.o"
  "CMakeFiles/mfa_dfa.dir/dfa.cpp.o.d"
  "libmfa_dfa.a"
  "libmfa_dfa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfa_dfa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
