file(REMOVE_RECURSE
  "libmfa_dfa.a"
)
