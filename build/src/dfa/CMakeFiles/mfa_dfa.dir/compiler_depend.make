# Empty compiler generated dependencies file for mfa_dfa.
# This may be replaced when dependencies are built.
