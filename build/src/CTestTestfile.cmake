# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("regex")
subdirs("nfa")
subdirs("dfa")
subdirs("filter")
subdirs("split")
subdirs("mfa")
subdirs("hfa")
subdirs("xfa")
subdirs("flow")
subdirs("trace")
subdirs("patterns")
subdirs("rules")
subdirs("eval")
