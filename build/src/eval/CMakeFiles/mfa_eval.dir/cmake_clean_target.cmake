file(REMOVE_RECURSE
  "libmfa_eval.a"
)
