# Empty dependencies file for mfa_eval.
# This may be replaced when dependencies are built.
