file(REMOVE_RECURSE
  "CMakeFiles/mfa_eval.dir/harness.cpp.o"
  "CMakeFiles/mfa_eval.dir/harness.cpp.o.d"
  "libmfa_eval.a"
  "libmfa_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfa_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
