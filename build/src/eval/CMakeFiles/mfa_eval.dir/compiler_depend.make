# Empty compiler generated dependencies file for mfa_eval.
# This may be replaced when dependencies are built.
