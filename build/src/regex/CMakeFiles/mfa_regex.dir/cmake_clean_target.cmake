file(REMOVE_RECURSE
  "libmfa_regex.a"
)
