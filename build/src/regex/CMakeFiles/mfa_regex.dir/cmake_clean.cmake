file(REMOVE_RECURSE
  "CMakeFiles/mfa_regex.dir/ast.cpp.o"
  "CMakeFiles/mfa_regex.dir/ast.cpp.o.d"
  "CMakeFiles/mfa_regex.dir/parser.cpp.o"
  "CMakeFiles/mfa_regex.dir/parser.cpp.o.d"
  "CMakeFiles/mfa_regex.dir/sample.cpp.o"
  "CMakeFiles/mfa_regex.dir/sample.cpp.o.d"
  "libmfa_regex.a"
  "libmfa_regex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfa_regex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
