# Empty compiler generated dependencies file for mfa_regex.
# This may be replaced when dependencies are built.
