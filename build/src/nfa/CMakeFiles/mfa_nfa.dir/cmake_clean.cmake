file(REMOVE_RECURSE
  "CMakeFiles/mfa_nfa.dir/nfa.cpp.o"
  "CMakeFiles/mfa_nfa.dir/nfa.cpp.o.d"
  "libmfa_nfa.a"
  "libmfa_nfa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfa_nfa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
