# Empty compiler generated dependencies file for mfa_nfa.
# This may be replaced when dependencies are built.
