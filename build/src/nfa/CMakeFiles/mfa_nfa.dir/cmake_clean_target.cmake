file(REMOVE_RECURSE
  "libmfa_nfa.a"
)
