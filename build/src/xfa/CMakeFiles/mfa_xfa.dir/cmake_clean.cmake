file(REMOVE_RECURSE
  "CMakeFiles/mfa_xfa.dir/xfa.cpp.o"
  "CMakeFiles/mfa_xfa.dir/xfa.cpp.o.d"
  "libmfa_xfa.a"
  "libmfa_xfa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfa_xfa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
