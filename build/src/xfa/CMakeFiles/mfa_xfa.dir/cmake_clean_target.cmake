file(REMOVE_RECURSE
  "libmfa_xfa.a"
)
