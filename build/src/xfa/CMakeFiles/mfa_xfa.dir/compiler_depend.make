# Empty compiler generated dependencies file for mfa_xfa.
# This may be replaced when dependencies are built.
