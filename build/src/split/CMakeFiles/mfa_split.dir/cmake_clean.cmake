file(REMOVE_RECURSE
  "CMakeFiles/mfa_split.dir/splitter.cpp.o"
  "CMakeFiles/mfa_split.dir/splitter.cpp.o.d"
  "libmfa_split.a"
  "libmfa_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfa_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
