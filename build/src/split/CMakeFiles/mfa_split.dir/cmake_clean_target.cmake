file(REMOVE_RECURSE
  "libmfa_split.a"
)
