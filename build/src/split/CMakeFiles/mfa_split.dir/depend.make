# Empty dependencies file for mfa_split.
# This may be replaced when dependencies are built.
