file(REMOVE_RECURSE
  "libmfa_trace.a"
)
