# Empty dependencies file for mfa_trace.
# This may be replaced when dependencies are built.
