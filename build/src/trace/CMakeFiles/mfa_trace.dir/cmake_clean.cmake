file(REMOVE_RECURSE
  "CMakeFiles/mfa_trace.dir/pcap.cpp.o"
  "CMakeFiles/mfa_trace.dir/pcap.cpp.o.d"
  "CMakeFiles/mfa_trace.dir/real_life.cpp.o"
  "CMakeFiles/mfa_trace.dir/real_life.cpp.o.d"
  "CMakeFiles/mfa_trace.dir/trace.cpp.o"
  "CMakeFiles/mfa_trace.dir/trace.cpp.o.d"
  "libmfa_trace.a"
  "libmfa_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfa_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
