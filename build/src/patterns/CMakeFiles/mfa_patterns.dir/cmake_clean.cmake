file(REMOVE_RECURSE
  "CMakeFiles/mfa_patterns.dir/builtin.cpp.o"
  "CMakeFiles/mfa_patterns.dir/builtin.cpp.o.d"
  "libmfa_patterns.a"
  "libmfa_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfa_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
