
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/patterns/builtin.cpp" "src/patterns/CMakeFiles/mfa_patterns.dir/builtin.cpp.o" "gcc" "src/patterns/CMakeFiles/mfa_patterns.dir/builtin.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nfa/CMakeFiles/mfa_nfa.dir/DependInfo.cmake"
  "/root/repo/build/src/regex/CMakeFiles/mfa_regex.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mfa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
