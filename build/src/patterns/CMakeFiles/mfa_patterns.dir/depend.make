# Empty dependencies file for mfa_patterns.
# This may be replaced when dependencies are built.
