file(REMOVE_RECURSE
  "libmfa_patterns.a"
)
