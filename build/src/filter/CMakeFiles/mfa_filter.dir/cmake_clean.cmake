file(REMOVE_RECURSE
  "CMakeFiles/mfa_filter.dir/action.cpp.o"
  "CMakeFiles/mfa_filter.dir/action.cpp.o.d"
  "libmfa_filter.a"
  "libmfa_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfa_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
