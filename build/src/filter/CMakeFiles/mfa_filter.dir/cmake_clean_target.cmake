file(REMOVE_RECURSE
  "libmfa_filter.a"
)
