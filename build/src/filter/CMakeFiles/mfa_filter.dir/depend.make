# Empty dependencies file for mfa_filter.
# This may be replaced when dependencies are built.
