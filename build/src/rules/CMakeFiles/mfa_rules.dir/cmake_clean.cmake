file(REMOVE_RECURSE
  "CMakeFiles/mfa_rules.dir/rules.cpp.o"
  "CMakeFiles/mfa_rules.dir/rules.cpp.o.d"
  "libmfa_rules.a"
  "libmfa_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfa_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
