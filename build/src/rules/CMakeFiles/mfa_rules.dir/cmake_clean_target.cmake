file(REMOVE_RECURSE
  "libmfa_rules.a"
)
