# Empty dependencies file for mfa_rules.
# This may be replaced when dependencies are built.
