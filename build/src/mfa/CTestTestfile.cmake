# CMake generated Testfile for 
# Source directory: /root/repo/src/mfa
# Build directory: /root/repo/build/src/mfa
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
