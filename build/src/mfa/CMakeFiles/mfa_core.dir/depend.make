# Empty dependencies file for mfa_core.
# This may be replaced when dependencies are built.
