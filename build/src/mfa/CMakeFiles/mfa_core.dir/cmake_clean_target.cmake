file(REMOVE_RECURSE
  "libmfa_core.a"
)
