file(REMOVE_RECURSE
  "CMakeFiles/mfa_core.dir/mfa.cpp.o"
  "CMakeFiles/mfa_core.dir/mfa.cpp.o.d"
  "CMakeFiles/mfa_core.dir/serialize.cpp.o"
  "CMakeFiles/mfa_core.dir/serialize.cpp.o.d"
  "libmfa_core.a"
  "libmfa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
