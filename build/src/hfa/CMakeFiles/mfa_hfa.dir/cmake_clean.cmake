file(REMOVE_RECURSE
  "CMakeFiles/mfa_hfa.dir/hfa.cpp.o"
  "CMakeFiles/mfa_hfa.dir/hfa.cpp.o.d"
  "libmfa_hfa.a"
  "libmfa_hfa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfa_hfa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
