file(REMOVE_RECURSE
  "libmfa_hfa.a"
)
