# Empty compiler generated dependencies file for mfa_hfa.
# This may be replaced when dependencies are built.
