file(REMOVE_RECURSE
  "CMakeFiles/mfa_util.dir/table.cpp.o"
  "CMakeFiles/mfa_util.dir/table.cpp.o.d"
  "CMakeFiles/mfa_util.dir/timing.cpp.o"
  "CMakeFiles/mfa_util.dir/timing.cpp.o.d"
  "libmfa_util.a"
  "libmfa_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfa_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
