file(REMOVE_RECURSE
  "libmfa_util.a"
)
