# Empty dependencies file for mfa_util.
# This may be replaced when dependencies are built.
