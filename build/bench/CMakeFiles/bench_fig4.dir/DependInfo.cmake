
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig4.cpp" "bench/CMakeFiles/bench_fig4.dir/bench_fig4.cpp.o" "gcc" "bench/CMakeFiles/bench_fig4.dir/bench_fig4.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/mfa_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/mfa/CMakeFiles/mfa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hfa/CMakeFiles/mfa_hfa.dir/DependInfo.cmake"
  "/root/repo/build/src/xfa/CMakeFiles/mfa_xfa.dir/DependInfo.cmake"
  "/root/repo/build/src/split/CMakeFiles/mfa_split.dir/DependInfo.cmake"
  "/root/repo/build/src/filter/CMakeFiles/mfa_filter.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mfa_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/dfa/CMakeFiles/mfa_dfa.dir/DependInfo.cmake"
  "/root/repo/build/src/patterns/CMakeFiles/mfa_patterns.dir/DependInfo.cmake"
  "/root/repo/build/src/nfa/CMakeFiles/mfa_nfa.dir/DependInfo.cmake"
  "/root/repo/build/src/regex/CMakeFiles/mfa_regex.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mfa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
