# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_charclass[1]_include.cmake")
include("/root/repo/build/tests/test_parser[1]_include.cmake")
include("/root/repo/build/tests/test_ast[1]_include.cmake")
include("/root/repo/build/tests/test_nfa[1]_include.cmake")
include("/root/repo/build/tests/test_dfa[1]_include.cmake")
include("/root/repo/build/tests/test_filter[1]_include.cmake")
include("/root/repo/build/tests/test_split[1]_include.cmake")
include("/root/repo/build/tests/test_mfa[1]_include.cmake")
include("/root/repo/build/tests/test_paper_examples[1]_include.cmake")
include("/root/repo/build/tests/test_equivalence[1]_include.cmake")
include("/root/repo/build/tests/test_flow[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_patterns[1]_include.cmake")
include("/root/repo/build/tests/test_hfa_xfa[1]_include.cmake")
include("/root/repo/build/tests/test_eval[1]_include.cmake")
include("/root/repo/build/tests/test_util_lib[1]_include.cmake")
include("/root/repo/build/tests/test_gap_split[1]_include.cmake")
include("/root/repo/build/tests/test_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_rules[1]_include.cmake")
include("/root/repo/build/tests/test_splitter_edge[1]_include.cmake")
include("/root/repo/build/tests/test_parser_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_compact_dfa[1]_include.cmake")
include("/root/repo/build/tests/test_pcap[1]_include.cmake")
