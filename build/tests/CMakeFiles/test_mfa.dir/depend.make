# Empty dependencies file for test_mfa.
# This may be replaced when dependencies are built.
