file(REMOVE_RECURSE
  "CMakeFiles/test_mfa.dir/test_mfa.cpp.o"
  "CMakeFiles/test_mfa.dir/test_mfa.cpp.o.d"
  "test_mfa"
  "test_mfa.pdb"
  "test_mfa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mfa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
