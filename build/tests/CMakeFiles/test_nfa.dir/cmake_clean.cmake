file(REMOVE_RECURSE
  "CMakeFiles/test_nfa.dir/test_nfa.cpp.o"
  "CMakeFiles/test_nfa.dir/test_nfa.cpp.o.d"
  "test_nfa"
  "test_nfa.pdb"
  "test_nfa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nfa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
