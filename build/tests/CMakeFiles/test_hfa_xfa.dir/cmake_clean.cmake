file(REMOVE_RECURSE
  "CMakeFiles/test_hfa_xfa.dir/test_hfa_xfa.cpp.o"
  "CMakeFiles/test_hfa_xfa.dir/test_hfa_xfa.cpp.o.d"
  "test_hfa_xfa"
  "test_hfa_xfa.pdb"
  "test_hfa_xfa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hfa_xfa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
