# Empty dependencies file for test_hfa_xfa.
# This may be replaced when dependencies are built.
