file(REMOVE_RECURSE
  "CMakeFiles/test_util_lib.dir/test_util_lib.cpp.o"
  "CMakeFiles/test_util_lib.dir/test_util_lib.cpp.o.d"
  "test_util_lib"
  "test_util_lib.pdb"
  "test_util_lib[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
