file(REMOVE_RECURSE
  "CMakeFiles/test_charclass.dir/test_charclass.cpp.o"
  "CMakeFiles/test_charclass.dir/test_charclass.cpp.o.d"
  "test_charclass"
  "test_charclass.pdb"
  "test_charclass[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_charclass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
