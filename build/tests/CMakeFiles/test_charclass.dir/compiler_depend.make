# Empty compiler generated dependencies file for test_charclass.
# This may be replaced when dependencies are built.
