# Empty dependencies file for test_compact_dfa.
# This may be replaced when dependencies are built.
