file(REMOVE_RECURSE
  "CMakeFiles/test_compact_dfa.dir/test_compact_dfa.cpp.o"
  "CMakeFiles/test_compact_dfa.dir/test_compact_dfa.cpp.o.d"
  "test_compact_dfa"
  "test_compact_dfa.pdb"
  "test_compact_dfa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compact_dfa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
