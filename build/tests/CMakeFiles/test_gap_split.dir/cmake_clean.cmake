file(REMOVE_RECURSE
  "CMakeFiles/test_gap_split.dir/test_gap_split.cpp.o"
  "CMakeFiles/test_gap_split.dir/test_gap_split.cpp.o.d"
  "test_gap_split"
  "test_gap_split.pdb"
  "test_gap_split[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gap_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
