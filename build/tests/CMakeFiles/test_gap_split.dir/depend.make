# Empty dependencies file for test_gap_split.
# This may be replaced when dependencies are built.
