file(REMOVE_RECURSE
  "CMakeFiles/test_dfa.dir/test_dfa.cpp.o"
  "CMakeFiles/test_dfa.dir/test_dfa.cpp.o.d"
  "test_dfa"
  "test_dfa.pdb"
  "test_dfa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dfa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
