# Empty dependencies file for test_dfa.
# This may be replaced when dependencies are built.
