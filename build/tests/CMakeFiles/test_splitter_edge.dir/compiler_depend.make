# Empty compiler generated dependencies file for test_splitter_edge.
# This may be replaced when dependencies are built.
