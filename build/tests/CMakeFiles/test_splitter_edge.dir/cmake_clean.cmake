file(REMOVE_RECURSE
  "CMakeFiles/test_splitter_edge.dir/test_splitter_edge.cpp.o"
  "CMakeFiles/test_splitter_edge.dir/test_splitter_edge.cpp.o.d"
  "test_splitter_edge"
  "test_splitter_edge.pdb"
  "test_splitter_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_splitter_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
