# Empty dependencies file for ids_inspector.
# This may be replaced when dependencies are built.
