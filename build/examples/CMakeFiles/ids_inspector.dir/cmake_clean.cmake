file(REMOVE_RECURSE
  "CMakeFiles/ids_inspector.dir/ids_inspector.cpp.o"
  "CMakeFiles/ids_inspector.dir/ids_inspector.cpp.o.d"
  "ids_inspector"
  "ids_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ids_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
