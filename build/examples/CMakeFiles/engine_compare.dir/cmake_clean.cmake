file(REMOVE_RECURSE
  "CMakeFiles/engine_compare.dir/engine_compare.cpp.o"
  "CMakeFiles/engine_compare.dir/engine_compare.cpp.o.d"
  "engine_compare"
  "engine_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
