# Empty compiler generated dependencies file for engine_compare.
# This may be replaced when dependencies are built.
