# Empty dependencies file for mfa_grep.
# This may be replaced when dependencies are built.
