file(REMOVE_RECURSE
  "CMakeFiles/mfa_grep.dir/mfa_grep.cpp.o"
  "CMakeFiles/mfa_grep.dir/mfa_grep.cpp.o.d"
  "mfa_grep"
  "mfa_grep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfa_grep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
